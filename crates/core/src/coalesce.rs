//! Fault-index coalescing (Algorithm 2 of the paper).
//!
//! The equivalence relation `R = S/∼` is a union-find over the node universe
//! of [`crate::fault::NodeTable`]: `s0`, every fault site, and every arrival.
//!
//! * **Initialization** (lines 1–7): sites of registers dead after their
//!   access point join `[s0]`; everything else starts a singleton.
//! * **Intra-instruction coalescing** (line 10 / Algorithm 3): the arrival
//!   merges of [`crate::arrival::IntraRules`], applied once — they do not
//!   depend on `R`.
//! * **Inter-instruction coalescing** (line 12): site `(p, v, i)` joins the
//!   class of its arrivals `{arr(q, v, i) | q ∈ use(p, v)}` when they all
//!   already share one class. Equivalence classes are disjoint, so "the
//!   intersection of the use classes is nonempty" is exactly "all arrival
//!   classes coincide". Iterated to the least fixpoint; union-find merges
//!   are monotone, so termination is by Knaster–Tarski.
//!
//! The fixpoint runs over the dense node numbering: per-pair node bases
//! resolve arithmetically and every class query is a path-compressed
//! union-find find — the passes do no hashing and no allocation beyond one
//! reused scratch vector.

use crate::analysis::BecOptions;
use crate::arrival::IntraRules;
use crate::bitvalue::BitValues;
use crate::fault::{FaultSite, NodeTable, S0};
use bec_dataflow::UnionFind;
use bec_ir::{AccessTable, DefUse, Function, Liveness, PointId, PointLayout, Program, Reg};

/// The coalescing result for one function.
#[derive(Clone, Debug)]
pub struct Coalescing {
    nodes: NodeTable,
    uf: UnionFind,
    /// Number of inter-instruction fixpoint passes taken.
    passes: u32,
}

impl Coalescing {
    /// Runs initialization, intra-instruction and inter-instruction
    /// coalescing to the fixpoint.
    pub fn compute(
        program: &Program,
        func: &Function,
        layout: &PointLayout,
        liveness: &Liveness,
        du: &DefUse,
        values: &BitValues,
        options: &BecOptions,
    ) -> Coalescing {
        let access = AccessTable::of(program, func, layout);
        Coalescing::compute_with(program, func, layout, &access, liveness, du, values, options)
    }

    /// [`Coalescing::compute`] with the per-function access table
    /// precomputed by the caller.
    #[allow(clippy::too_many_arguments)]
    pub fn compute_with(
        program: &Program,
        func: &Function,
        layout: &PointLayout,
        access: &AccessTable,
        liveness: &Liveness,
        du: &DefUse,
        values: &BitValues,
        options: &BecOptions,
    ) -> Coalescing {
        let nodes = NodeTable::build_with(program, layout, access);
        let w = nodes.width();
        let mut uf = UnionFind::new(nodes.len());

        // --- Initialization: killed sites are masked (Alg. 2 lines 4-5). ---
        for (p, r) in nodes.site_pairs() {
            if !liveness.is_live_after(p, r) {
                let base = nodes.site_base(p, r).expect("site exists") as usize;
                for i in 0..w as usize {
                    uf.union(base + i, S0);
                }
            }
        }

        // --- Intra-instruction rules (arrival merges; Alg. 3). ---
        let intra = IntraRules { program, func, layout, values, nodes: &nodes, options };
        intra.apply(&mut |a, b| {
            uf.union(a, b);
        });

        // --- Inter-instruction fixpoint (Alg. 2 line 12). ---
        //
        // Site (p, v, i) may merge with the common class of its arrivals
        // {arr(q, v, i) | q ∈ use(p, v)} under one of two temporal-alignment
        // guards (DESIGN.md §2):
        //
        // * the common class is [s0] — masking holds at *every* dynamic
        //   arrival, so re-arrivals across loop iterations are harmless; or
        // * there is exactly one use in the same basic block, strictly after
        //   `p` — the window then opens and closes within one block
        //   execution, so the site's occurrences align 1:1 with the
        //   arrival's dynamic instances (a window wrapping a back edge, or
        //   spanning blocks with different trip counts, is rejected: its
        //   fault would arrive at a *different* dynamic instance of `q` than
        //   an injection at `q`'s own window, which is empirically
        //   distinguishable — the validation suite exercises exactly this).
        let site_pairs: Vec<(PointId, Reg)> = nodes.site_pairs().collect();
        let mut arr_bases: Vec<Option<u32>> = Vec::new();
        let mut passes = 0;
        loop {
            passes += 1;
            let before = uf.merge_count();
            for &(p, r) in &site_pairs {
                let users = du.uses(p, r);
                if users.is_empty() {
                    continue; // killed: already in [s0]
                }
                let aligned_single_use = users.len() == 1 && {
                    let q = users[0];
                    layout.block_of(q) == layout.block_of(p) && q > p
                };
                let site_base = nodes.site_base(p, r).expect("site exists") as usize;
                arr_bases.clear();
                arr_bases.extend(users.iter().map(|&q| nodes.arrival_base(q, r)));
                for i in 0..w {
                    let site = site_base + i as usize;
                    let s0_rep = uf.find(S0);
                    let all_masked = arr_bases.iter().all(|b| {
                        b.is_some_and(|base| uf.find(base as usize + i as usize) == s0_rep)
                    });
                    if all_masked {
                        uf.union(site, S0);
                    } else if aligned_single_use {
                        if let Some(base) = arr_bases[0] {
                            uf.union(site, base as usize + i as usize);
                        }
                    }
                }
            }
            if uf.merge_count() == before {
                break;
            }
        }

        Coalescing { nodes, uf, passes }
    }

    /// The node table (fault-space numbering).
    pub fn nodes(&self) -> &NodeTable {
        &self.nodes
    }

    /// Canonical class representative of fault site `(p, reg, bit)`, if the
    /// register is accessed at `p`.
    pub fn class_of(&self, p: PointId, reg: Reg, bit: u32) -> Option<usize> {
        self.nodes.site(p, reg, bit).map(|n| self.uf.find_imm(n))
    }

    /// Whether a fault at site `(p, reg, bit)` is masked (equivalent to the
    /// intact execution `s0`).
    ///
    /// Returns `None` when `reg` is not accessed at `p` (not a fault site of
    /// the initialization).
    pub fn is_masked(&self, p: PointId, reg: Reg, bit: u32) -> Option<bool> {
        self.class_of(p, reg, bit).map(|c| c == self.uf.find_imm(S0))
    }

    /// The representative of the `[s0]` class.
    pub fn s0_class(&self) -> usize {
        self.uf.find_imm(S0)
    }

    /// Groups all *site* nodes by equivalence class. The `[s0]` class is
    /// included (its sites are the masked ones). Classes are keyed by
    /// representative; members are sorted by (point, reg, bit).
    pub fn site_classes(&self) -> Vec<(usize, Vec<FaultSite>)> {
        let w = self.nodes.width();
        // Sites are enumerated in (point, reg, bit) order, so a stable sort
        // by representative alone leaves each class's members sorted.
        let mut tagged: Vec<(usize, FaultSite)> = Vec::new();
        for (p, r) in self.nodes.site_pairs() {
            let base = self.nodes.site_base(p, r).expect("site exists") as usize;
            for i in 0..w {
                tagged.push((
                    self.uf.find_imm(base + i as usize),
                    FaultSite { point: p, reg: r, bit: i },
                ));
            }
        }
        tagged.sort_by_key(|&(rep, site)| (rep, site));
        let mut out: Vec<(usize, Vec<FaultSite>)> = Vec::new();
        for (rep, site) in tagged {
            match out.last_mut() {
                Some((r, members)) if *r == rep => members.push(site),
                _ => out.push((rep, vec![site])),
            }
        }
        out
    }

    /// Number of distinct classes among all nodes (including `[s0]`).
    pub fn class_count(&self) -> usize {
        self.uf.class_count()
    }

    /// Number of inter-instruction fixpoint passes that were needed.
    pub fn passes(&self) -> u32 {
        self.passes
    }

    /// Total number of coalescing nodes (`s0` + sites + arrivals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Whether two sites are provably equivalent.
    pub fn same_class(&self, a: FaultSite, b: FaultSite) -> bool {
        match (self.class_of(a.point, a.reg, a.bit), self.class_of(b.point, b.reg, b.bit)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }
}
