//! Global abstract bit-value analysis (Algorithm 1 of the paper).
//!
//! A forward dataflow over [`AbsValue`]s computing `k(p, v)` — the abstract
//! bit values of data point `v` after program point `p` — for every accessed
//! `(p, v)` pair. Definitions reaching a read are combined with the meet
//! operator of Fig. 3b; instruction side effects are evaluated in the
//! abstract domain (Fig. 3c and friends). The analysis starts optimistically
//! at ⊥ and rises monotonically, so the fixpoint it reaches is the MFP
//! solution the paper's §V requires.

use bec_dataflow::{AbsValue, BitValue};
use bec_ir::semantics::eval_alu;
use bec_ir::{
    AluOp, DefUse, Function, Inst, MachineConfig, PointId, PointInst, PointLayout, Program, Reg,
};
use std::collections::{HashMap, VecDeque};

/// Results of the bit-value analysis for one function.
#[derive(Clone, Debug)]
pub struct BitValues {
    width: u32,
    /// Merged incoming value of each register read: `⋀_{o ∈ def(p,u)} k(o, u)`.
    in_vals: HashMap<(PointId, Reg), AbsValue>,
    /// Value written at each definition: `k(p, v)` for `v ∈ write(p)`.
    out_vals: HashMap<(PointId, Reg), AbsValue>,
}

impl BitValues {
    /// Runs the analysis on `func` of `program`, using precomputed def–use
    /// chains.
    pub fn compute(program: &Program, func: &Function, du: &DefUse) -> BitValues {
        let config = &program.config;
        let layout = PointLayout::of(func);
        let width = config.xlen;
        let mut bv = BitValues { width, in_vals: HashMap::new(), out_vals: HashMap::new() };

        // Worklist over points, seeded with everything in layout order.
        let mut queue: VecDeque<PointId> = layout.iter().collect();
        let mut queued: Vec<bool> = vec![true; layout.len()];
        while let Some(p) = queue.pop_front() {
            queued[p.index()] = false;
            let pi = layout.resolve(func, p);

            // Merge reaching definitions into incoming operand values.
            let reads = pi.reads(program);
            for &u in &reads {
                let v = bv.incoming(config, du, p, u);
                bv.in_vals.insert((p, u), v);
            }

            // Evaluate the instruction in the abstract domain.
            let writes = transfer(config, program, pi, |r| bv.read_val(config, p, r));
            for (r, val) in writes {
                if config.is_zero_reg(r) {
                    continue; // writes to the zero register vanish
                }
                let slot = bv.out_vals.entry((p, r)).or_insert_with(|| AbsValue::bottom(width));
                let new = slot.meet(&val);
                if new != *slot {
                    *slot = new;
                    // Re-queue every reader of this definition.
                    for &q in du.uses(p, r) {
                        if !queued[q.index()] {
                            queued[q.index()] = true;
                            queue.push_back(q);
                        }
                    }
                }
            }
        }
        bv
    }

    fn incoming(&self, config: &MachineConfig, du: &DefUse, p: PointId, u: Reg) -> AbsValue {
        if config.is_zero_reg(u) {
            return AbsValue::constant(self.width, 0);
        }
        let defs = du.defs(p, u);
        if defs.is_empty() {
            // Value flows in from outside the function (argument or
            // uninitialized register): unknown.
            return AbsValue::top(self.width);
        }
        let mut acc = AbsValue::bottom(self.width);
        for &d in defs {
            let dv =
                self.out_vals.get(&(d, u)).copied().unwrap_or_else(|| AbsValue::bottom(self.width));
            acc = acc.meet(&dv);
        }
        acc
    }

    fn read_val(&self, config: &MachineConfig, p: PointId, r: Reg) -> AbsValue {
        if config.is_zero_reg(r) {
            return AbsValue::constant(self.width, 0);
        }
        self.in_vals.get(&(p, r)).copied().unwrap_or_else(|| AbsValue::top(self.width))
    }

    /// `k(p, v)` for `v` read at `p`: the merged incoming value. Unknown
    /// pairs yield ⊤.
    pub fn value_in(&self, p: PointId, r: Reg) -> AbsValue {
        self.in_vals.get(&(p, r)).copied().unwrap_or_else(|| AbsValue::top(self.width))
    }

    /// `k(p, v)` after `p`: the written value if `v ∈ write(p)`, otherwise
    /// the incoming value (reads leave the register unchanged).
    pub fn value_after(&self, p: PointId, r: Reg) -> AbsValue {
        self.out_vals
            .get(&(p, r))
            .or_else(|| self.in_vals.get(&(p, r)))
            .copied()
            .unwrap_or_else(|| AbsValue::top(self.width))
    }
}

/// Abstract evaluation of one program point. Returns `(reg, value)` for each
/// written register. `get` supplies incoming operand values.
pub fn transfer(
    config: &MachineConfig,
    program: &Program,
    pi: PointInst<'_>,
    get: impl Fn(Reg) -> AbsValue,
) -> Vec<(Reg, AbsValue)> {
    let w = config.xlen;
    let inst = match pi {
        PointInst::Inst(i) => i,
        PointInst::Term(_) => return Vec::new(), // terminators write nothing
    };
    match inst {
        Inst::Li { rd, imm } => vec![(*rd, AbsValue::constant(w, *imm as u64))],
        Inst::La { rd, global } => {
            let addr = program.global_address(global).unwrap_or(0);
            vec![(*rd, AbsValue::constant(w, addr))]
        }
        Inst::Mv { rd, rs } => vec![(*rd, get(*rs))],
        Inst::Neg { rd, rs } => vec![(*rd, get(*rs).neg())],
        Inst::Seqz { rd, rs } => vec![(*rd, AbsValue::bool_word(w, get(*rs).is_zero()))],
        Inst::Snez { rd, rs } => {
            let z = get(*rs).is_zero();
            vec![(*rd, AbsValue::bool_word(w, z.not()))]
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            vec![(*rd, alu_transfer(config, *op, &get(*rs1), &get(*rs2)))]
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let b = AbsValue::constant(w, *imm as u64);
            vec![(*rd, alu_transfer(config, *op, &get(*rs1), &b))]
        }
        Inst::Load { rd, .. } => vec![(*rd, AbsValue::top(w))], // memory not modeled
        Inst::Call { callee } => {
            // ABI summary: every written/clobbered register becomes unknown.
            program.call_effects(callee).writes.into_iter().map(|r| (r, AbsValue::top(w))).collect()
        }
        Inst::Store { .. } | Inst::Print { .. } | Inst::Nop => Vec::new(),
    }
}

/// Abstract ALU transfer. Constants fold through the concrete semantics
/// ([`bec_ir::semantics::eval_alu`]), so the abstract and concrete worlds
/// agree by construction.
pub fn alu_transfer(config: &MachineConfig, op: AluOp, a: &AbsValue, b: &AbsValue) -> AbsValue {
    let w = config.xlen;
    if a.has_bottom() || b.has_bottom() {
        return AbsValue::bottom(w);
    }
    if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
        return AbsValue::constant(w, eval_alu(config, op, ca, cb));
    }
    match op {
        AluOp::And => a.and(b),
        AluOp::Or => a.or(b),
        AluOp::Xor => a.xor(b),
        AluOp::Add => a.add(b),
        AluOp::Sub => a.sub(b),
        AluOp::Mul => a.mul_low(b),
        AluOp::Sll | AluOp::Srl | AluOp::Sra => match b.as_const() {
            Some(amt) => {
                let k = config.shamt(amt);
                match op {
                    AluOp::Sll => a.shl_const(k),
                    AluOp::Srl => a.shr_const(k),
                    _ => a.sra_const(k),
                }
            }
            // Unknown shift amount: only an all-zero operand survives.
            None => {
                if a.as_const() == Some(0) {
                    AbsValue::constant(w, 0)
                } else {
                    AbsValue::top(w)
                }
            }
        },
        AluOp::Slt => AbsValue::bool_word(w, a.lt_s(b)),
        AluOp::Sltu => AbsValue::bool_word(w, a.lt_u(b)),
        AluOp::Mulh | AluOp::Mulhu | AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => {
            AbsValue::top(w)
        }
    }
}

/// Abstract evaluation of a branch condition on abstract operands; `Zero`
/// means provably not taken, `One` provably taken.
pub fn cond_transfer(cond: bec_ir::Cond, a: &AbsValue, b: &AbsValue) -> BitValue {
    use bec_ir::Cond;
    match cond {
        Cond::Eq => a.eq(b),
        Cond::Ne => a.eq(b).not(),
        Cond::Lt => a.lt_s(b),
        Cond::Ge => a.lt_s(b).not(),
        Cond::Ltu => a.lt_u(b),
        Cond::Geu => a.lt_u(b).not(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bec_ir::parse_program;

    fn analyze(src: &str) -> (Program, BitValues) {
        let p = parse_program(src).unwrap();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        let bv = BitValues::compute(&p, f, &du);
        (p.clone(), bv)
    }

    #[test]
    fn constants_propagate_through_straightline() {
        let (_, bv) = analyze(
            "func @main(args=0, ret=none) {\nentry:\n    li t0, 5\n    addi t1, t0, 2\n    slli t1, t1, 1\n    print t1\n    exit\n}\n",
        );
        assert_eq!(bv.value_after(PointId(1), Reg::T1).as_const(), Some(7));
        assert_eq!(bv.value_after(PointId(2), Reg::T1).as_const(), Some(14));
    }

    #[test]
    fn motivating_example_bit_values() {
        // Fig. 2b: inside the loop v1 is unknown; andi pins high bits.
        let (_, bv) = analyze(
            r#"machine xlen=4 regs=4 zero=none
func @main(args=0, ret=none) {
entry:
    li r0, 0
    li r1, 7
    j loop
loop:
    andi r2, r1, 1
    andi r3, r1, 3
    addi r1, r1, -1
    seqz r2, r2
    snez r3, r3
    and  r2, r2, r3
    add  r0, r0, r2
    bnez r1, loop
exit:
    ret r0
}
"#,
        );
        let (r1, r2, r3) = (Reg::phys(1), Reg::phys(2), Reg::phys(3));
        // k(p1, v1) = 0111 right after the initialization.
        assert_eq!(bv.value_after(PointId(1), r1).to_string(), "0111");
        // Inside the loop the induction variable is unknown (p3 = first andi).
        assert_eq!(bv.value_in(PointId(3), r1).to_string(), "××××");
        // k(p3, v2) = 000× (Fig. 2b).
        assert_eq!(bv.value_after(PointId(3), r2).to_string(), "000×");
        // k(p4, v3) = 00×× after andi r3, r1, 3.
        assert_eq!(bv.value_after(PointId(4), r3).to_string(), "00××");
        // seqz and snez produce 000× (boolean with unknown bit 0).
        assert_eq!(bv.value_after(PointId(6), r2).to_string(), "000×");
        assert_eq!(bv.value_after(PointId(7), r3).to_string(), "000×");
    }

    #[test]
    fn join_meets_disagreeing_constants() {
        let (_, bv) = analyze(
            r#"func @main(args=0, ret=none) {
entry:
    li t1, 1
    bnez t1, a, b
a:
    li t0, 4
    j join
b:
    li t0, 5
    j join
join:
    print t0
    exit
}
"#,
        );
        // At the join, t0 = 4 ∧ 5 = 010× ... 100 meets 101 = 10×.
        let f = parse_program("func @x(args=0, ret=none) {\ne:\n    exit\n}\n").unwrap();
        let _ = f;
        let print_pt = PointId(6); // entry:li,bnez(2) a:li,j(2) b:li,j(2) → join starts at 6
        let v = bv.value_in(print_pt, Reg::T0);
        assert_eq!(v.bit(0), BitValue::Top);
        assert_eq!(v.bit(2), BitValue::One);
        assert_eq!(v.bit(1), BitValue::Zero);
    }

    #[test]
    fn loads_and_calls_clobber_to_top() {
        let src = r#"
global g: word[1] = { 42 }
func @f(args=0, ret=a0) {
entry:
    li a0, 1
    ret a0
}
func @main(args=0, ret=none) {
entry:
    li t0, 3
    la t1, @g
    lw t2, 0(t1)
    call @f
    print a0
    exit
}
"#;
        let p = parse_program(src).unwrap();
        let f = p.function("main").unwrap();
        let du = DefUse::compute(f, &p);
        let bv = BitValues::compute(&p, f, &du);
        // la produces the known global address.
        assert_eq!(
            bv.value_after(PointId(1), Reg::T1).as_const(),
            Some(bec_ir::program::DATA_BASE)
        );
        // Loads are unknown.
        assert_eq!(bv.value_after(PointId(2), Reg::T2), AbsValue::top(32));
        // The call clobbers t0 (caller-saved).
        assert_eq!(bv.value_after(PointId(3), Reg::T0), AbsValue::top(32));
        assert_eq!(bv.value_after(PointId(3), Reg::A0), AbsValue::top(32));
    }

    #[test]
    fn x0_reads_are_constant_zero() {
        let (_, bv) = analyze(
            "func @main(args=0, ret=none) {\nentry:\n    add t0, zero, zero\n    print t0\n    exit\n}\n",
        );
        assert_eq!(bv.value_after(PointId(0), Reg::T0).as_const(), Some(0));
    }

    #[test]
    fn unknown_shift_amount_is_top_unless_zero_operand() {
        let c = MachineConfig::rv32();
        let top = AbsValue::top(32);
        let zero = AbsValue::constant(32, 0);
        assert_eq!(alu_transfer(&c, AluOp::Sll, &zero, &top).as_const(), Some(0));
        assert_eq!(alu_transfer(&c, AluOp::Sll, &top, &top), AbsValue::top(32));
    }
}
