//! Global abstract bit-value analysis (Algorithm 1 of the paper).
//!
//! A forward dataflow over [`AbsValue`]s computing `k(p, v)` — the abstract
//! bit values of data point `v` after program point `p` — for every accessed
//! `(p, v)` pair. Definitions reaching a read are combined with the meet
//! operator of Fig. 3b; instruction side effects are evaluated in the
//! abstract domain (Fig. 3c and friends). The analysis starts optimistically
//! at ⊥ and rises monotonically, so the fixpoint it reaches is the MFP
//! solution the paper's §V requires.
//!
//! The solver is dense: in/out words live in flat `Vec<AbsValue>` arrays
//! indexed arithmetically by `point_idx * num_regs + reg_idx` (no hashing),
//! the worklist is a reverse-postorder priority queue with a dedup bitmap
//! (each pop takes the pending point earliest in RPO, which converges loops
//! in near-minimal passes), and the transfer function writes into a
//! caller-provided scratch buffer instead of allocating a `Vec` per visit.

use bec_dataflow::{AbsValue, BitValue};
use bec_ir::semantics::eval_alu;
use bec_ir::{
    AccessTable, AluOp, Cfg, DefUse, Function, Inst, MachineConfig, PointId, PointInst,
    PointLayout, Program, Reg, RegMask,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The value lookup the coalescing rules need: `k(p, v)` for reads.
/// Implemented by the dense [`BitValues`] and by the retained reference
/// solver.
pub trait ValueQuery {
    /// `k(p, v)` for `v` read at `p`: the merged incoming value. Unknown
    /// pairs yield ⊤.
    fn value_in(&self, p: PointId, r: Reg) -> AbsValue;
}

/// Results of the bit-value analysis for one function, in flat dense
/// storage.
#[derive(Clone, Debug)]
pub struct BitValues {
    width: u32,
    nregs: u32,
    /// Merged incoming value of each register read: `⋀_{o ∈ def(p,u)} k(o, u)`.
    in_vals: Vec<AbsValue>,
    /// Value written at each definition: `k(p, v)` for `v ∈ write(p)`.
    out_vals: Vec<AbsValue>,
    /// Registers read per point (incoming values recorded).
    read_mask: Vec<RegMask>,
    /// Registers written per point, minus the zero register (whose writes
    /// vanish).
    out_mask: Vec<RegMask>,
    /// Worklist pops until the fixpoint (solver statistic).
    visits: u64,
}

impl BitValues {
    /// Runs the analysis on `func` of `program`, using precomputed def–use
    /// chains.
    pub fn compute(program: &Program, func: &Function, du: &DefUse) -> BitValues {
        let layout = PointLayout::of(func);
        let cfg = Cfg::of(func);
        let access = AccessTable::of(program, func, &layout);
        BitValues::compute_with(program, func, &layout, &cfg, &access, du)
    }

    /// [`BitValues::compute`] with the shared per-function context
    /// precomputed by the caller.
    pub fn compute_with(
        program: &Program,
        func: &Function,
        layout: &PointLayout,
        cfg: &Cfg,
        access: &AccessTable,
        du: &DefUse,
    ) -> BitValues {
        let config = &program.config;
        let width = config.xlen;
        let nregs = config.num_regs.min(64);
        let zero = match config.zero_reg {
            Some(z) => RegMask::of(z),
            None => RegMask::empty(),
        };
        let np = layout.len();
        let mut bv = BitValues {
            width,
            nregs,
            in_vals: vec![AbsValue::bottom(width); np * nregs as usize],
            out_vals: vec![AbsValue::bottom(width); np * nregs as usize],
            read_mask: (0..np).map(|i| access.read_mask(PointId(i as u32))).collect(),
            out_mask: (0..np)
                .map(|i| access.write_mask(PointId(i as u32)).difference(zero))
                .collect(),
            visits: 0,
        };

        // Reverse-postorder priority worklist with a dedup bitmap, seeded
        // with every point.
        let rank = layout.rpo_ranks(cfg);
        let mut queue: BinaryHeap<Reverse<(u32, u32)>> =
            (0..np as u32).map(|p| Reverse((rank[p as usize], p))).collect();
        let mut queued = vec![true; np];
        let mut scratch: Vec<(Reg, AbsValue)> = Vec::with_capacity(4);
        while let Some(Reverse((_, pi))) = queue.pop() {
            let p = PointId(pi);
            queued[p.index()] = false;
            bv.visits += 1;

            // Merge reaching definitions into incoming operand values.
            for u in bv.read_mask[p.index()].iter() {
                let v = bv.incoming(config, du, p, u);
                let slot = bv.slot(p, u);
                bv.in_vals[slot] = v;
            }

            // Evaluate the instruction in the abstract domain.
            scratch.clear();
            let pinst = layout.resolve(func, p);
            transfer(config, program, pinst, |r| bv.read_val(config, p, r), &mut scratch);
            for &(r, val) in &scratch {
                if config.is_zero_reg(r) {
                    continue; // writes to the zero register vanish
                }
                let slot = bv.slot(p, r);
                let new = bv.out_vals[slot].meet(&val);
                if new != bv.out_vals[slot] {
                    bv.out_vals[slot] = new;
                    // Re-queue every reader of this definition.
                    for &q in du.uses(p, r) {
                        if !queued[q.index()] {
                            queued[q.index()] = true;
                            queue.push(Reverse((rank[q.index()], q.0)));
                        }
                    }
                }
            }
        }
        bv
    }

    #[inline]
    fn slot(&self, p: PointId, r: Reg) -> usize {
        debug_assert!(!r.is_virtual() && r.index() < self.nregs);
        p.index() * self.nregs as usize + r.index() as usize
    }

    fn incoming(&self, config: &MachineConfig, du: &DefUse, p: PointId, u: Reg) -> AbsValue {
        if config.is_zero_reg(u) {
            return AbsValue::constant(self.width, 0);
        }
        let defs = du.defs(p, u);
        if defs.is_empty() {
            // Value flows in from outside the function (argument or
            // uninitialized register): unknown.
            return AbsValue::top(self.width);
        }
        let mut acc = AbsValue::bottom(self.width);
        for &d in defs {
            acc = acc.meet(&self.out_vals[self.slot(d, u)]);
        }
        acc
    }

    fn read_val(&self, config: &MachineConfig, p: PointId, r: Reg) -> AbsValue {
        if config.is_zero_reg(r) {
            return AbsValue::constant(self.width, 0);
        }
        if self.read_mask[p.index()].contains(r) {
            self.in_vals[self.slot(p, r)]
        } else {
            AbsValue::top(self.width)
        }
    }

    /// `k(p, v)` for `v` read at `p`: the merged incoming value. Unknown
    /// pairs yield ⊤.
    pub fn value_in(&self, p: PointId, r: Reg) -> AbsValue {
        if p.index() < self.read_mask.len() && self.read_mask[p.index()].contains(r) {
            self.in_vals[self.slot(p, r)]
        } else {
            AbsValue::top(self.width)
        }
    }

    /// `k(p, v)` after `p`: the written value if `v ∈ write(p)`, otherwise
    /// the incoming value (reads leave the register unchanged).
    pub fn value_after(&self, p: PointId, r: Reg) -> AbsValue {
        if p.index() < self.out_mask.len() && self.out_mask[p.index()].contains(r) {
            self.out_vals[self.slot(p, r)]
        } else {
            self.value_in(p, r)
        }
    }

    /// Number of worklist pops the solver took to reach the fixpoint.
    pub fn visits(&self) -> u64 {
        self.visits
    }
}

impl ValueQuery for BitValues {
    fn value_in(&self, p: PointId, r: Reg) -> AbsValue {
        BitValues::value_in(self, p, r)
    }
}

/// Abstract evaluation of one program point. Pushes `(reg, value)` for each
/// written register into `out` (the caller's scratch buffer — cleared by
/// the caller, so one buffer serves the whole fixpoint without
/// re-allocating). `get` supplies incoming operand values.
pub fn transfer(
    config: &MachineConfig,
    program: &Program,
    pi: PointInst<'_>,
    get: impl Fn(Reg) -> AbsValue,
    out: &mut Vec<(Reg, AbsValue)>,
) {
    let w = config.xlen;
    let inst = match pi {
        PointInst::Inst(i) => i,
        PointInst::Term(_) => return, // terminators write nothing
    };
    match inst {
        Inst::Li { rd, imm } => out.push((*rd, AbsValue::constant(w, *imm as u64))),
        Inst::La { rd, global } => {
            let addr = program.global_address(global).unwrap_or(0);
            out.push((*rd, AbsValue::constant(w, addr)));
        }
        Inst::Mv { rd, rs } => out.push((*rd, get(*rs))),
        Inst::Neg { rd, rs } => out.push((*rd, get(*rs).neg())),
        Inst::Seqz { rd, rs } => out.push((*rd, AbsValue::bool_word(w, get(*rs).is_zero()))),
        Inst::Snez { rd, rs } => {
            let z = get(*rs).is_zero();
            out.push((*rd, AbsValue::bool_word(w, z.not())));
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            out.push((*rd, alu_transfer(config, *op, &get(*rs1), &get(*rs2))));
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let b = AbsValue::constant(w, *imm as u64);
            out.push((*rd, alu_transfer(config, *op, &get(*rs1), &b)));
        }
        Inst::Load { rd, .. } => out.push((*rd, AbsValue::top(w))), // memory not modeled
        Inst::Call { callee } => {
            // ABI summary: every written/clobbered register becomes unknown.
            out.extend(
                program.call_effects(callee).writes.into_iter().map(|r| (r, AbsValue::top(w))),
            );
        }
        Inst::Store { .. } | Inst::Print { .. } | Inst::Nop => {}
    }
}

/// Abstract ALU transfer. Constants fold through the concrete semantics
/// ([`bec_ir::semantics::eval_alu`]), so the abstract and concrete worlds
/// agree by construction.
pub fn alu_transfer(config: &MachineConfig, op: AluOp, a: &AbsValue, b: &AbsValue) -> AbsValue {
    let w = config.xlen;
    if a.has_bottom() || b.has_bottom() {
        return AbsValue::bottom(w);
    }
    if let (Some(ca), Some(cb)) = (a.as_const(), b.as_const()) {
        return AbsValue::constant(w, eval_alu(config, op, ca, cb));
    }
    match op {
        AluOp::And => a.and(b),
        AluOp::Or => a.or(b),
        AluOp::Xor => a.xor(b),
        AluOp::Add => a.add(b),
        AluOp::Sub => a.sub(b),
        AluOp::Mul => a.mul_low(b),
        AluOp::Sll | AluOp::Srl | AluOp::Sra => match b.as_const() {
            Some(amt) => {
                let k = config.shamt(amt);
                match op {
                    AluOp::Sll => a.shl_const(k),
                    AluOp::Srl => a.shr_const(k),
                    _ => a.sra_const(k),
                }
            }
            // Unknown shift amount: only an all-zero operand survives.
            None => {
                if a.as_const() == Some(0) {
                    AbsValue::constant(w, 0)
                } else {
                    AbsValue::top(w)
                }
            }
        },
        AluOp::Slt => AbsValue::bool_word(w, a.lt_s(b)),
        AluOp::Sltu => AbsValue::bool_word(w, a.lt_u(b)),
        AluOp::Mulh | AluOp::Mulhu | AluOp::Div | AluOp::Divu | AluOp::Rem | AluOp::Remu => {
            AbsValue::top(w)
        }
    }
}

/// Abstract evaluation of a branch condition on abstract operands; `Zero`
/// means provably not taken, `One` provably taken.
pub fn cond_transfer(cond: bec_ir::Cond, a: &AbsValue, b: &AbsValue) -> BitValue {
    use bec_ir::Cond;
    match cond {
        Cond::Eq => a.eq(b),
        Cond::Ne => a.eq(b).not(),
        Cond::Lt => a.lt_s(b),
        Cond::Ge => a.lt_s(b).not(),
        Cond::Ltu => a.lt_u(b),
        Cond::Geu => a.lt_u(b).not(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bec_ir::parse_program;

    fn analyze(src: &str) -> (Program, BitValues) {
        let p = parse_program(src).unwrap();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        let bv = BitValues::compute(&p, f, &du);
        (p.clone(), bv)
    }

    #[test]
    fn constants_propagate_through_straightline() {
        let (_, bv) = analyze(
            "func @main(args=0, ret=none) {\nentry:\n    li t0, 5\n    addi t1, t0, 2\n    slli t1, t1, 1\n    print t1\n    exit\n}\n",
        );
        assert_eq!(bv.value_after(PointId(1), Reg::T1).as_const(), Some(7));
        assert_eq!(bv.value_after(PointId(2), Reg::T1).as_const(), Some(14));
    }

    #[test]
    fn motivating_example_bit_values() {
        // Fig. 2b: inside the loop v1 is unknown; andi pins high bits.
        let (_, bv) = analyze(
            r#"machine xlen=4 regs=4 zero=none
func @main(args=0, ret=none) {
entry:
    li r0, 0
    li r1, 7
    j loop
loop:
    andi r2, r1, 1
    andi r3, r1, 3
    addi r1, r1, -1
    seqz r2, r2
    snez r3, r3
    and  r2, r2, r3
    add  r0, r0, r2
    bnez r1, loop
exit:
    ret r0
}
"#,
        );
        let (r1, r2, r3) = (Reg::phys(1), Reg::phys(2), Reg::phys(3));
        // k(p1, v1) = 0111 right after the initialization.
        assert_eq!(bv.value_after(PointId(1), r1).to_string(), "0111");
        // Inside the loop the induction variable is unknown (p3 = first andi).
        assert_eq!(bv.value_in(PointId(3), r1).to_string(), "××××");
        // k(p3, v2) = 000× (Fig. 2b).
        assert_eq!(bv.value_after(PointId(3), r2).to_string(), "000×");
        // k(p4, v3) = 00×× after andi r3, r1, 3.
        assert_eq!(bv.value_after(PointId(4), r3).to_string(), "00××");
        // seqz and snez produce 000× (boolean with unknown bit 0).
        assert_eq!(bv.value_after(PointId(6), r2).to_string(), "000×");
        assert_eq!(bv.value_after(PointId(7), r3).to_string(), "000×");
    }

    #[test]
    fn join_meets_disagreeing_constants() {
        let (_, bv) = analyze(
            r#"func @main(args=0, ret=none) {
entry:
    li t1, 1
    bnez t1, a, b
a:
    li t0, 4
    j join
b:
    li t0, 5
    j join
join:
    print t0
    exit
}
"#,
        );
        // At the join, t0 = 4 ∧ 5 = 010× ... 100 meets 101 = 10×.
        let print_pt = PointId(6); // entry:li,bnez(2) a:li,j(2) b:li,j(2) → join starts at 6
        let v = bv.value_in(print_pt, Reg::T0);
        assert_eq!(v.bit(0), BitValue::Top);
        assert_eq!(v.bit(2), BitValue::One);
        assert_eq!(v.bit(1), BitValue::Zero);
    }

    #[test]
    fn loads_and_calls_clobber_to_top() {
        let src = r#"
global g: word[1] = { 42 }
func @f(args=0, ret=a0) {
entry:
    li a0, 1
    ret a0
}
func @main(args=0, ret=none) {
entry:
    li t0, 3
    la t1, @g
    lw t2, 0(t1)
    call @f
    print a0
    exit
}
"#;
        let p = parse_program(src).unwrap();
        let f = p.function("main").unwrap();
        let du = DefUse::compute(f, &p);
        let bv = BitValues::compute(&p, f, &du);
        // la produces the known global address.
        assert_eq!(
            bv.value_after(PointId(1), Reg::T1).as_const(),
            Some(bec_ir::program::DATA_BASE)
        );
        // Loads are unknown.
        assert_eq!(bv.value_after(PointId(2), Reg::T2), AbsValue::top(32));
        // The call clobbers t0 (caller-saved).
        assert_eq!(bv.value_after(PointId(3), Reg::T0), AbsValue::top(32));
        assert_eq!(bv.value_after(PointId(3), Reg::A0), AbsValue::top(32));
    }

    #[test]
    fn x0_reads_are_constant_zero() {
        let (_, bv) = analyze(
            "func @main(args=0, ret=none) {\nentry:\n    add t0, zero, zero\n    print t0\n    exit\n}\n",
        );
        assert_eq!(bv.value_after(PointId(0), Reg::T0).as_const(), Some(0));
    }

    #[test]
    fn unknown_shift_amount_is_top_unless_zero_operand() {
        let c = MachineConfig::rv32();
        let top = AbsValue::top(32);
        let zero = AbsValue::constant(32, 0);
        assert_eq!(alu_transfer(&c, AluOp::Sll, &zero, &top).as_const(), Some(0));
        assert_eq!(alu_transfer(&c, AluOp::Sll, &top, &top), AbsValue::top(32));
    }

    #[test]
    fn solver_records_visit_count() {
        let (_, bv) = analyze(
            "func @main(args=0, ret=none) {\nentry:\n    li t0, 5\n    print t0\n    exit\n}\n",
        );
        // Straight-line code: every point visited exactly once.
        assert_eq!(bv.visits(), 3);
    }
}
