//! Dynamic execution profiles: how often each program point executed.
//!
//! The Table III/IV accountings weight static fault sites by the execution
//! counts of a golden (fault-free) run. Profiles are produced by the
//! simulator's golden run (`bec-sim`) or constructed by hand in tests.

use bec_ir::PointId;
use std::collections::HashMap;

/// Execution counts per `(function index, program point)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecProfile {
    counts: HashMap<(usize, PointId), u64>,
}

impl ExecProfile {
    /// An empty profile (all counts zero).
    pub fn new() -> ExecProfile {
        ExecProfile::default()
    }

    /// Adds `n` executions of `point` in function `func`.
    pub fn add(&mut self, func: usize, point: PointId, n: u64) {
        *self.counts.entry((func, point)).or_insert(0) += n;
    }

    /// Sets the count exactly.
    pub fn set(&mut self, func: usize, point: PointId, n: u64) {
        self.counts.insert((func, point), n);
    }

    /// Execution count of `point` in function `func`.
    pub fn count(&self, func: usize, point: PointId) -> u64 {
        self.counts.get(&(func, point)).copied().unwrap_or(0)
    }

    /// Total executed points (the trace length in cycles).
    pub fn total_cycles(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Iterates over all nonzero entries.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, PointId), u64)> + '_ {
        self.counts.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_total() {
        let mut p = ExecProfile::new();
        p.add(0, PointId(0), 1);
        p.add(0, PointId(0), 2);
        p.add(1, PointId(5), 7);
        assert_eq!(p.count(0, PointId(0)), 3);
        assert_eq!(p.count(0, PointId(9)), 0);
        assert_eq!(p.total_cycles(), 10);
    }
}
