//! Intra-instruction coalescing rules (Algorithm 3 of the paper).
//!
//! For every read `(q, x)` and bit `i`, the *arrival* node `arr(q, x, i)`
//! stands for the effect — through `q`'s computation only — of bit `x^i`
//! being corrupted when `q` reads it. The rules below merge arrivals with:
//!
//! * `s0` when the corruption is masked by the operation (`and` with a known
//!   zero, `or` with a known one, a bit shifted out, a write to the zero
//!   register);
//! * the output fault site `(q, z^j)` when the corruption relocates to a
//!   single result bit (`mv`, `xor`, `and`/`or` with a known bit, constant
//!   shifts);
//! * each other, when the paper's `eval` shows two bit flips force the same
//!   observable outcome (branches and the compare-like ops `slt`, `sltu`,
//!   `seqz`, `snez`).
//!
//! Arrival merges are local to their read and therefore globally sound;
//! they realize the paper's temporary relation `R′` without copying `R`
//! (DESIGN.md §2).

use crate::analysis::BecOptions;
use crate::bitvalue::{cond_transfer, ValueQuery};
use crate::fault::{NodeQuery, S0};
use bec_dataflow::{AbsValue, BitValue};
use bec_ir::{
    AluOp, Cond, Function, Inst, MachineConfig, PointId, PointLayout, Program, Reg, Terminator,
};

/// Context for emitting the intra-instruction merges of one function.
///
/// Generic over the value and node lookups ([`ValueQuery`] / [`NodeQuery`])
/// so the dense engine and the retained reference solver share one rule
/// implementation — the rules are the soundness-critical part, and the
/// equivalence test only means something if both engines run the same ones.
pub struct IntraRules<'a, V, N> {
    /// The program (for machine config and call signatures).
    pub program: &'a Program,
    /// The function under analysis.
    pub func: &'a Function,
    /// Its point layout.
    pub layout: &'a PointLayout,
    /// Bit-value analysis results (`k(p, v)`).
    pub values: &'a V,
    /// Node numbering.
    pub nodes: &'a N,
    /// Analysis options (extension toggles).
    pub options: &'a BecOptions,
}

impl<'a, V: ValueQuery, N: NodeQuery> IntraRules<'a, V, N> {
    /// Emits every intra-instruction merge through `merge(a, b)`.
    pub fn apply(&self, merge: &mut impl FnMut(usize, usize)) {
        for p in self.layout.iter() {
            self.apply_point(p, merge);
        }
    }

    fn config(&self) -> &MachineConfig {
        &self.program.config
    }

    /// Node for output bit `(p, rd, i)`, or `s0` when `rd` is the hardwired
    /// zero register (the write vanishes, so the corruption is masked).
    fn out(&self, p: PointId, rd: Reg, i: u32) -> usize {
        if self.config().is_zero_reg(rd) {
            return S0;
        }
        self.nodes.site(p, rd, i).expect("written register has a site")
    }

    fn arr(&self, p: PointId, rs: Reg, i: u32) -> Option<usize> {
        if self.config().is_zero_reg(rs) {
            return None; // no storage element to corrupt
        }
        self.nodes.arrival(p, rs, i)
    }

    fn k_in(&self, p: PointId, r: Reg) -> AbsValue {
        if self.config().is_zero_reg(r) {
            AbsValue::constant(self.config().xlen, 0)
        } else {
            self.values.value_in(p, r)
        }
    }

    fn apply_point(&self, p: PointId, merge: &mut impl FnMut(usize, usize)) {
        let w = self.config().xlen;
        let pi = self.layout.resolve(self.func, p);
        if let Some(t) = pi.as_term() {
            if let Terminator::Branch { cond, rs1, rs2, .. } = t {
                self.branch_rules(p, *cond, *rs1, *rs2, merge);
            }
            return;
        }
        let inst = pi.as_inst().expect("non-terminator point");
        match inst {
            Inst::Mv { rd, rs } => {
                for i in 0..w {
                    if let Some(a) = self.arr(p, *rs, i) {
                        merge(a, self.out(p, *rd, i));
                    }
                }
            }
            Inst::Alu { op: AluOp::Xor, rd, rs1, rs2 } => {
                if rs1 == rs2 {
                    // xor z, x, x ≡ 0: a flip hits both operands and cancels.
                    for i in 0..w {
                        if let Some(a) = self.arr(p, *rs1, i) {
                            merge(a, S0);
                        }
                    }
                } else {
                    for i in 0..w {
                        for rs in [rs1, rs2] {
                            if let Some(a) = self.arr(p, *rs, i) {
                                merge(a, self.out(p, *rd, i));
                            }
                        }
                    }
                }
            }
            Inst::AluImm { op: AluOp::Xor, rd, rs1, .. } => {
                // xor with a constant flips deterministically: corruption
                // propagates bit-for-bit (this covers `not`).
                for i in 0..w {
                    if let Some(a) = self.arr(p, *rs1, i) {
                        merge(a, self.out(p, *rd, i));
                    }
                }
            }
            Inst::Alu { op: op @ (AluOp::And | AluOp::Or), rd, rs1, rs2 } if rs1 != rs2 => {
                let kx = self.k_in(p, *rs1);
                let ky = self.k_in(p, *rs2);
                self.and_or_rules(p, *op, *rd, *rs1, &ky, merge);
                self.and_or_rules(p, *op, *rd, *rs2, &kx, merge);
            }
            Inst::AluImm { op: op @ (AluOp::And | AluOp::Or), rd, rs1, imm } => {
                let kimm = AbsValue::constant(w, *imm as u64);
                self.and_or_rules(p, *op, *rd, *rs1, &kimm, merge);
            }
            Inst::Alu { op: op @ (AluOp::Sll | AluOp::Srl | AluOp::Sra), rd, rs1, rs2 }
                if rs1 != rs2 =>
            {
                let kamt = self.k_in(p, *rs2);
                self.shift_rules(p, *op, *rd, *rs1, &kamt, merge);
            }
            Inst::AluImm { op: op @ (AluOp::Sll | AluOp::Srl | AluOp::Sra), rd, rs1, imm } => {
                let kamt = AbsValue::constant(w, *imm as u64);
                self.shift_rules(p, *op, *rd, *rs1, &kamt, merge);
            }
            Inst::Alu { op: op @ (AluOp::Slt | AluOp::Sltu), rd: _, rs1, rs2 }
                if self.options.eval_compare_ops =>
            {
                let signed = *op == AluOp::Slt;
                let a = self.k_in(p, *rs1);
                let b = self.k_in(p, *rs2);
                let eval = |fa: &AbsValue, fb: &AbsValue| {
                    if signed {
                        fa.lt_s(fb)
                    } else {
                        fa.lt_u(fb)
                    }
                };
                self.eval_equivalence(p, &[(*rs1, true), (*rs2, false)], &a, &b, eval, merge);
            }
            Inst::AluImm { op: op @ (AluOp::Slt | AluOp::Sltu), rd: _, rs1, imm }
                if self.options.eval_compare_ops =>
            {
                let signed = *op == AluOp::Slt;
                let a = self.k_in(p, *rs1);
                let b = AbsValue::constant(w, *imm as u64);
                let eval = |fa: &AbsValue, fb: &AbsValue| {
                    if signed {
                        fa.lt_s(fb)
                    } else {
                        fa.lt_u(fb)
                    }
                };
                self.eval_equivalence(p, &[(*rs1, true)], &a, &b, eval, merge);
            }
            Inst::Seqz { rd: _, rs } | Inst::Snez { rd: _, rs }
                if self.options.eval_compare_ops =>
            {
                let neg = matches!(inst, Inst::Snez { .. });
                let a = self.k_in(p, *rs);
                let b = AbsValue::constant(w, 0);
                let eval = move |fa: &AbsValue, _fb: &AbsValue| {
                    let z = fa.is_zero();
                    if neg {
                        z.not()
                    } else {
                        z
                    }
                };
                self.eval_equivalence(p, &[(*rs, true)], &a, &b, eval, merge);
            }
            // No intra rules: arithmetic (carry-coupled), memory (unmodeled),
            // calls and prints (externally observable), nop/li/la (no reads).
            _ => {}
        }
    }

    /// Rules for `and`/`or` on the arrival side of operand `x`, conditioned
    /// on the *other* operand's known bits (Algorithm 3, lines 8–25).
    fn and_or_rules(
        &self,
        p: PointId,
        op: AluOp,
        rd: Reg,
        x: Reg,
        other: &AbsValue,
        merge: &mut impl FnMut(usize, usize),
    ) {
        let w = self.config().xlen;
        // For `and`, a known-zero other bit masks; known-one propagates.
        // For `or` it is the mirror image.
        let (mask_on, pass_on) = match op {
            AluOp::And => (BitValue::Zero, BitValue::One),
            AluOp::Or => (BitValue::One, BitValue::Zero),
            _ => unreachable!("and_or_rules only handles and/or"),
        };
        for i in 0..w {
            let Some(a) = self.arr(p, x, i) else { continue };
            let o = other.bit(i);
            if o == mask_on {
                merge(a, S0);
            } else if o == pass_on {
                merge(a, self.out(p, rd, i));
            }
        }
    }

    /// Rules for shifts (Algorithm 3, lines 26–35): bits provably shifted
    /// out are masked; constant shifts relocate bits to a single output
    /// position. The `sra` sign bit replicates and is therefore only
    /// relocatable by a zero shift.
    fn shift_rules(
        &self,
        p: PointId,
        op: AluOp,
        rd: Reg,
        x: Reg,
        kamt: &AbsValue,
        merge: &mut impl FnMut(usize, usize),
    ) {
        let w = self.config().xlen;
        let min_shamt = self.min_shamt(kamt);
        let const_shamt = kamt.as_const().map(|v| self.config().shamt(v));
        for i in 0..w {
            let Some(a) = self.arr(p, x, i) else { continue };
            match op {
                AluOp::Sll => {
                    if i + min_shamt >= w {
                        merge(a, S0);
                    } else if let Some(k) = const_shamt {
                        if i + k < w {
                            merge(a, self.out(p, rd, i + k));
                        }
                    }
                }
                AluOp::Srl => {
                    if i < min_shamt {
                        merge(a, S0);
                    } else if let Some(k) = const_shamt {
                        if i >= k {
                            merge(a, self.out(p, rd, i - k));
                        }
                    }
                }
                AluOp::Sra => {
                    if i < w - 1 {
                        if i < min_shamt {
                            merge(a, S0);
                        } else if let Some(k) = const_shamt {
                            if i >= k {
                                merge(a, self.out(p, rd, i - k));
                            }
                        }
                    } else if const_shamt == Some(0) {
                        merge(a, self.out(p, rd, i));
                    }
                }
                _ => unreachable!("shift_rules only handles shifts"),
            }
        }
    }

    /// The smallest shift amount the abstract operand permits (after the
    /// machine's shift-amount masking).
    fn min_shamt(&self, kamt: &AbsValue) -> u32 {
        let w = self.config().xlen;
        if let Some(v) = kamt.as_const() {
            return self.config().shamt(v);
        }
        if kamt.has_bottom() || !w.is_power_of_two() {
            return 0; // conservative
        }
        // Only the low log2(w) bits matter; unknown bits go to zero for the
        // minimum.
        let bits = w.trailing_zeros();
        let mut min = 0u32;
        for b in 0..bits {
            if kamt.bit(b) == BitValue::One {
                min |= 1 << b;
            }
        }
        min
    }

    /// Branch rules (Algorithm 3, line 36): two bit flips of the same
    /// operand with the same determined branch outcome are equivalent.
    fn branch_rules(
        &self,
        p: PointId,
        cond: Cond,
        rs1: Reg,
        rs2: Option<Reg>,
        merge: &mut impl FnMut(usize, usize),
    ) {
        let w = self.config().xlen;
        let a = self.k_in(p, rs1);
        let b = match rs2 {
            Some(r) => self.k_in(p, r),
            None => AbsValue::constant(w, 0),
        };
        let mut operands = vec![(rs1, true)];
        if let Some(r2) = rs2 {
            operands.push((r2, false));
        }
        let eval = move |fa: &AbsValue, fb: &AbsValue| cond_transfer(cond, fa, fb);
        self.eval_equivalence(p, &operands, &a, &b, eval, merge);
    }

    /// Shared `eval`-equivalence machinery for branches and compare-like
    /// operations. `operands` lists (register, is-lhs); a flip of a register
    /// that appears as both operands is applied to both (the physical model:
    /// the bit lives in one register).
    fn eval_equivalence(
        &self,
        p: PointId,
        operands: &[(Reg, bool)],
        a: &AbsValue,
        b: &AbsValue,
        eval: impl Fn(&AbsValue, &AbsValue) -> BitValue,
        merge: &mut impl FnMut(usize, usize),
    ) {
        let w = self.config().xlen;
        let golden = eval(a, b);
        // Deduplicate registers (beq x, x reads one register).
        let mut regs: Vec<Reg> = Vec::new();
        for (r, _) in operands {
            if !regs.contains(r) {
                regs.push(*r);
            }
        }
        for &r in &regs {
            let on_lhs = operands.iter().any(|(o, lhs)| *o == r && *lhs);
            let on_rhs = operands.iter().any(|(o, lhs)| *o == r && !*lhs);
            let mut outcomes: Vec<(u32, BitValue)> = Vec::new();
            for i in 0..w {
                if self.arr(p, r, i).is_none() {
                    continue;
                }
                let fa = if on_lhs { a.flip_bit(i) } else { *a };
                let fb = if on_rhs { b.flip_bit(i) } else { *b };
                let out = eval(&fa, &fb);
                if out.is_known() {
                    outcomes.push((i, out));
                }
            }
            // Merge bits of the same operand with equal determined outcomes.
            for (idx, &(i, oi)) in outcomes.iter().enumerate() {
                for &(j, oj) in &outcomes[..idx] {
                    if oi == oj {
                        let (ai, aj) = (self.arr(p, r, i).unwrap(), self.arr(p, r, j).unwrap());
                        merge(ai, aj);
                    }
                }
                // Extension (off by default): a flip that provably reproduces
                // the golden outcome is masked through this use.
                if self.options.golden_masking && golden.is_known() && oi == golden {
                    merge(self.arr(p, r, i).unwrap(), S0);
                }
            }
        }
        // Extension (off by default): cross-operand equivalence.
        if self.options.cross_operand_eval && regs.len() == 2 {
            let (r1, r2) = (regs[0], regs[1]);
            for i in 0..w {
                for j in 0..w {
                    let (Some(a1), Some(a2)) = (self.arr(p, r1, i), self.arr(p, r2, j)) else {
                        continue;
                    };
                    let o1 = eval(&a.flip_bit(i), b);
                    let o2 = eval(a, &b.flip_bit(j));
                    if o1.is_known() && o1 == o2 {
                        merge(a1, a2);
                    }
                }
            }
        }
    }
}
