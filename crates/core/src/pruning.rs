//! Use case 1: fault-injection campaign pruning accounting (§VI-A,
//! Table III).
//!
//! Definitions (DESIGN.md §2):
//!
//! * **Live in values** — the inject-on-read baseline: one injection per bit
//!   of every *value-live* fault site per dynamic occurrence, i.e.
//!   `Σ_{(p,v): v live after p} w · exec(p)`.
//! * **Live in bits** — the BEC campaign: one injection per equivalence
//!   class per dynamic occurrence; a class is charged the largest execution
//!   count among its member sites (every temporal window must be covered,
//!   equivalent windows share one run).
//! * **Masked bits** — value-live site bits proven equivalent to `s0`.
//! * **Inferrable bits** — the remainder: runs whose outcome is inferred
//!   from another class member's run.

use crate::analysis::BecAnalysis;
use crate::profile::ExecProfile;
use bec_ir::Program;

/// Pruning statistics for one program (one benchmark = one row of
/// Table III).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PruningRow {
    /// Benchmark / program name.
    pub name: String,
    /// Fault-injection runs required by value-level (inject-on-read)
    /// analysis.
    pub live_values: u64,
    /// Fault-injection runs required by the BEC bit-level analysis.
    pub live_bits: u64,
    /// Runs pruned because the fault is masked.
    pub masked: u64,
    /// Runs pruned because the outcome is inferable from an equivalent run.
    pub inferrable: u64,
}

impl PruningRow {
    /// Fraction of fault-injection runs pruned, in percent
    /// (`1 − live_bits / live_values`).
    pub fn pruned_pct(&self) -> f64 {
        if self.live_values == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.live_bits as f64 / self.live_values as f64)
        }
    }
}

/// A collection of [`PruningRow`]s (the full Table III).
#[derive(Clone, Debug, Default)]
pub struct PruningReport {
    /// One row per benchmark.
    pub rows: Vec<PruningRow>,
}

impl PruningReport {
    /// Average pruning percentage across rows (the paper's "13.71 % on
    /// average").
    pub fn average_pruned_pct(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(PruningRow::pruned_pct).sum::<f64>() / self.rows.len() as f64
    }

    /// Maximum pruning percentage (the paper's "up to 30.04 %").
    pub fn max_pruned_pct(&self) -> f64 {
        self.rows.iter().map(PruningRow::pruned_pct).fold(0.0, f64::max)
    }
}

/// Computes the pruning statistics of one program under a given execution
/// profile.
pub fn pruning_row(
    name: &str,
    program: &Program,
    bec: &BecAnalysis,
    profile: &ExecProfile,
) -> PruningRow {
    let w = program.config.xlen as u64;
    let mut live_values = 0u64;
    let mut masked = 0u64;
    let mut live_bits = 0u64;

    for (fi, fa) in bec.functions().iter().enumerate() {
        let coal = &fa.coalescing;
        let s0 = coal.s0_class();

        // Value-level baseline and masked bits, per site.
        for (p, r) in coal.nodes().site_pairs() {
            if !fa.liveness.is_live_after(p, r) {
                continue; // killed: pruned by inject-on-read already
            }
            let exec = profile.count(fi, p);
            live_values += w * exec;
            for bit in 0..program.config.xlen {
                if coal.class_of(p, r, bit) == Some(s0) {
                    masked += exec;
                }
            }
        }

        // Bit-level: one run per class per temporal instance.
        for (rep, sites) in coal.site_classes() {
            if rep == s0 {
                continue;
            }
            let runs = sites.iter().map(|s| profile.count(fi, s.point)).max().unwrap_or(0);
            live_bits += runs;
        }
    }

    let inferrable = live_values.saturating_sub(live_bits).saturating_sub(masked);
    PruningRow { name: name.to_owned(), live_values, live_bits, masked, inferrable }
}
