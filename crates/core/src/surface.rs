//! Use case 2: the fault-surface metric (§III-B, §VI-B, Table IV).
//!
//! The *fault surface* of a program run is the number of live fault sites in
//! bits summed over every executed program point: at each point, every live
//! register contributes its bits that are not provably masked. A returned
//! value escapes the function and contributes all its bits at the `ret`
//! point (this reproduces the paper's 681-site count for Fig. 2b).

use crate::analysis::{BecAnalysis, FunctionAnalysis};
use crate::profile::ExecProfile;
use bec_ir::{Cfg, Function, PointId, PointLayout, Program, Reg, Terminator};
use std::collections::{BTreeSet, HashMap};

/// Fault-surface statistics for one program (one column of Table IV).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SurfaceRow {
    /// Benchmark / program name.
    pub name: String,
    /// Total fault space: trace cycles × register-file bits.
    pub total_fault_space: u64,
    /// Live (non-masked) fault sites over the trace — the vulnerability
    /// metric minimized by reliability-aware scheduling.
    pub live_sites: u64,
}

/// A collection of [`SurfaceRow`]s (Table IV rows for one scheduling
/// policy).
#[derive(Clone, Debug, Default)]
pub struct SurfaceReport {
    /// One row per benchmark.
    pub rows: Vec<SurfaceRow>,
}

/// Computes the fault surface of a program under an execution profile.
pub fn surface_row(
    name: &str,
    program: &Program,
    bec: &BecAnalysis,
    profile: &ExecProfile,
) -> SurfaceRow {
    let mut live_sites = 0u64;
    for (fi, fa) in bec.functions().iter().enumerate() {
        let func = &program.functions[fi];
        live_sites += function_surface(program, func, fa, |p| profile.count(fi, p));
    }
    SurfaceRow {
        name: name.to_owned(),
        total_fault_space: profile.total_cycles() * program.config.fault_bits(),
        live_sites,
    }
}

/// Fault surface of one function, weighting each point by `exec`.
pub fn function_surface(
    program: &Program,
    func: &Function,
    fa: &FunctionAnalysis,
    exec: impl Fn(PointId) -> u64,
) -> u64 {
    let w = program.config.xlen;
    let cover = CoverMap::compute(program, func, &fa.layout);
    let s0 = fa.coalescing.s0_class();
    let mut total = 0u64;
    for p in fa.layout.iter() {
        let n = exec(p);
        if n == 0 {
            continue;
        }
        let mut bits_here = 0u64;
        for v in fa.liveness.live_after(p) {
            let covering = cover.cover(p, v);
            if covering.is_empty() {
                // Live-in value with no access yet (function argument):
                // nothing is known about masking, count every bit.
                bits_here += w as u64;
                continue;
            }
            for bit in 0..w {
                let live = covering.iter().any(|&d| fa.coalescing.class_of(d, v, bit) != Some(s0));
                if live {
                    bits_here += 1;
                }
            }
        }
        // Returned values escape to the caller: their window stays live
        // through the ret point.
        if let Some(Terminator::Ret { reads }) = fa.layout.resolve(func, p).as_term() {
            let distinct: BTreeSet<Reg> = reads.iter().copied().collect();
            bits_here += w as u64 * distinct.len() as u64;
        }
        total += n * bits_here;
    }
    total
}

/// For each `(point, register)`: the access points of the register whose
/// fault-site window can cover this point (i.e. the most recent accesses on
/// some access-free path).
#[derive(Clone, Debug)]
pub struct CoverMap {
    map: HashMap<(PointId, Reg), Vec<PointId>>,
}

impl CoverMap {
    /// Forward "last access" analysis per register.
    pub fn compute(program: &Program, func: &Function, layout: &PointLayout) -> CoverMap {
        let cfg = Cfg::of(func);
        let zero = program.config.zero_reg;

        // Registers that appear anywhere.
        let mut regs: BTreeSet<Reg> = BTreeSet::new();
        for p in layout.iter() {
            let pi = layout.resolve(func, p);
            regs.extend(pi.reads(program));
            regs.extend(pi.writes(program));
        }
        if let Some(z) = zero {
            regs.remove(&z);
        }

        let nb = func.blocks.len();
        let mut map = HashMap::new();
        for &r in &regs {
            // Block-level fixpoint: set of access points reaching block end.
            let mut out: Vec<BTreeSet<PointId>> = vec![BTreeSet::new(); nb];
            let mut changed = true;
            while changed {
                changed = false;
                for &b in cfg.reverse_postorder() {
                    let mut acc: BTreeSet<PointId> = BTreeSet::new();
                    for &pr in cfg.predecessors(b) {
                        acc.extend(out[pr.index()].iter().copied());
                    }
                    let blk = func.block(b);
                    for off in 0..blk.point_count() {
                        let p = layout.point(b, off);
                        let pi = layout.resolve(func, p);
                        if pi.reads(program).contains(&r) || pi.writes(program).contains(&r) {
                            acc.clear();
                            acc.insert(p);
                        }
                    }
                    if out[b.index()] != acc {
                        out[b.index()] = acc;
                        changed = true;
                    }
                }
            }
            // Local walk: cover after each point.
            for (bi, blk) in func.blocks.iter().enumerate() {
                let b = bec_ir::BlockId(bi as u32);
                let mut acc: BTreeSet<PointId> = BTreeSet::new();
                for &pr in cfg.predecessors(b) {
                    acc.extend(out[pr.index()].iter().copied());
                }
                for off in 0..blk.point_count() {
                    let p = layout.point(b, off);
                    let pi = layout.resolve(func, p);
                    if pi.reads(program).contains(&r) || pi.writes(program).contains(&r) {
                        acc.clear();
                        acc.insert(p);
                    }
                    map.insert((p, r), acc.iter().copied().collect());
                }
            }
        }
        CoverMap { map }
    }

    /// The access points covering `(p, v)` (window containing the moment
    /// right after `p`). Empty for registers never accessed on any path to
    /// `p`.
    pub fn cover(&self, p: PointId, v: Reg) -> &[PointId] {
        self.map.get(&(p, v)).map(Vec::as_slice).unwrap_or(&[])
    }
}
