//! Plain-text table rendering for the experiment harnesses.

/// Renders an aligned plain-text table: a header row followed by data rows.
/// Column widths adapt to the longest cell; the first column is
/// left-aligned, the rest right-aligned (matching the paper's tables).
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render = |out: &mut String, cells: &[String]| {
        for (i, cell) in cells.iter().enumerate().take(ncols) {
            if i > 0 {
                out.push_str("  ");
            }
            let pad = widths[i].saturating_sub(cell.chars().count());
            if i == 0 {
                out.push_str(cell);
                out.push_str(&" ".repeat(pad));
            } else {
                out.push_str(&" ".repeat(pad));
                out.push_str(cell);
            }
        }
        out.push('\n');
    };
    let headers: Vec<String> = headers.iter().map(|s| (*s).to_owned()).collect();
    render(&mut out, &headers);
    let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        render(&mut out, row);
    }
    out
}

/// Formats a count with thousands separators (`1 026 304` style, as in the
/// paper's tables).
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, ch) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(' ');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_are_grouped() {
        assert_eq!(group_digits(5), "5");
        assert_eq!(group_digits(26272), "26 272");
        assert_eq!(group_digits(2819904), "2 819 904");
    }

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["Benchmark", "Runs"],
            &[vec!["aes".into(), "12".into()], vec!["crc".into(), "1234".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Benchmark"));
        assert!(lines[2].ends_with("  12"));
        assert!(lines[3].ends_with("1234"));
    }
}
