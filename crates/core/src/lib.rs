//! # BEC — bit-level error coalescing static analysis
//!
//! The paper's primary contribution (Ko & Burgstaller, CGO 2024, §IV):
//!
//! 1. **Global abstract bit-value analysis** (Algorithm 1, [`bitvalue`]) — a
//!    forward MFP dataflow computing `k(p, v)`, the abstract value of every
//!    bit of every data point, across basic blocks.
//! 2. **Fault-index coalescing analysis** (Algorithms 2–3, [`coalesce`] and
//!    [`arrival`]) — a backward analysis over an equivalence relation that
//!    classifies which fault sites mask soft errors and which are equivalent
//!    in effect.
//!
//! On top of the analysis sit the two use cases:
//!
//! * [`pruning`] — fault-injection campaign pruning accounting (Table III);
//! * [`surface`] — the live-fault-site ("fault surface") metric driving
//!   vulnerability-aware instruction scheduling (Table IV).
//!
//! ## Example
//!
//! ```
//! use bec_core::{BecAnalysis, BecOptions};
//! use bec_ir::parse_program;
//!
//! let program = parse_program(r#"
//! machine xlen=4 regs=4 zero=none
//! func @main(args=0, ret=none) {
//! entry:
//!     li   r1, 7
//!     andi r2, r1, 1
//!     seqz r2, r2
//!     print r2
//!     exit
//! }
//! "#)?;
//! let bec = BecAnalysis::analyze(&program, &BecOptions::default());
//! let f = bec.function_by_name("main").unwrap();
//! // r1 is the constant 7, so `andi r2, r1, 1` folds to the constant 1.
//! assert_eq!(f.values.value_after(bec_ir::PointId(1), bec_ir::Reg::phys(2)).to_string(), "0001");
//! # Ok::<(), bec_ir::IrError>(())
//! ```

pub mod analysis;
pub mod arrival;
pub mod bitvalue;
pub mod coalesce;
pub mod fault;
pub mod profile;
pub mod pruning;
#[doc(hidden)]
pub mod reference;
pub mod report;
pub mod surface;

pub use analysis::{
    AnalysisStats, BecAnalysis, BecOptions, FunctionAnalysis, SiteCounts, SiteVerdict,
};
pub use bitvalue::BitValues;
pub use coalesce::Coalescing;
pub use fault::FaultSite;
pub use profile::ExecProfile;
pub use pruning::{PruningReport, PruningRow};
pub use surface::{SurfaceReport, SurfaceRow};
