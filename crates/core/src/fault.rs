//! The fault space `F = P × V` and its dense node numbering.
//!
//! Following §II of the paper, a *fault site* `(p, vⁱ)` is bit `i` of
//! register `v` in the time window that opens after program point `p`
//! executes (where `p` accesses `v`) and closes at the next access of `v`.
//!
//! The coalescing analysis additionally materializes one *arrival* node per
//! `(read point, operand register, bit)`: the effect, through that read's
//! computation only, of the bit being corrupted when it is read. Arrivals
//! realize the paper's temporary relation `R′` (Algorithm 3) without copying
//! the equivalence relation — see DESIGN.md §2.

use bec_ir::{PointId, PointLayout, Program, Reg};
use std::collections::HashMap;

/// A spatial+temporal fault site within one function: bit `bit` of register
/// `reg` in the window after point `point`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultSite {
    /// The access point opening the window.
    pub point: PointId,
    /// The register holding the bit.
    pub reg: Reg,
    /// Bit position (LSB = 0).
    pub bit: u32,
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}^{})", self.point, self.reg, self.bit)
    }
}

/// Dense numbering of coalescing nodes for one function.
///
/// Node 0 is `s0` (the intact execution). Sites and arrivals occupy `width`
/// consecutive ids per (point, register) pair.
#[derive(Clone, Debug)]
pub struct NodeTable {
    width: u32,
    site_base: HashMap<(PointId, Reg), u32>,
    arrival_base: HashMap<(PointId, Reg), u32>,
    /// Reverse map for sites: node base → (point, reg).
    site_of_base: Vec<(PointId, Reg)>,
    site_bases_sorted: Vec<u32>,
    len: usize,
}

/// The node id of `s0` (intact semantics).
pub const S0: usize = 0;

impl NodeTable {
    /// Allocates nodes for every accessed `(point, register)` pair of the
    /// function (sites for reads and writes, arrivals for reads), skipping
    /// the hardwired zero register.
    pub fn build(program: &Program, func: &bec_ir::Function, layout: &PointLayout) -> NodeTable {
        let width = program.config.xlen;
        let mut t = NodeTable {
            width,
            site_base: HashMap::new(),
            arrival_base: HashMap::new(),
            site_of_base: Vec::new(),
            site_bases_sorted: Vec::new(),
            len: 1, // node 0 = s0
        };
        for p in layout.iter() {
            let pi = layout.resolve(func, p);
            let reads = pi.reads(program);
            let writes = pi.writes(program);
            let mut accessed: Vec<Reg> = Vec::new();
            for r in reads.iter().chain(writes.iter()) {
                if program.config.is_zero_reg(*r) || accessed.contains(r) {
                    continue;
                }
                accessed.push(*r);
            }
            for r in accessed {
                t.site_base.insert((p, r), t.len as u32);
                t.site_of_base.push((p, r));
                t.site_bases_sorted.push(t.len as u32);
                t.len += width as usize;
            }
            for r in reads {
                if program.config.is_zero_reg(r) || t.arrival_base.contains_key(&(p, r)) {
                    continue;
                }
                t.arrival_base.insert((p, r), t.len as u32);
                t.len += width as usize;
            }
        }
        t
    }

    /// Total number of nodes including `s0`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether only `s0` exists.
    pub fn is_empty(&self) -> bool {
        self.len <= 1
    }

    /// The machine word width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Node id of fault site `(p, reg, bit)`, if `reg` is accessed at `p`.
    pub fn site(&self, p: PointId, reg: Reg, bit: u32) -> Option<usize> {
        debug_assert!(bit < self.width);
        self.site_base.get(&(p, reg)).map(|b| *b as usize + bit as usize)
    }

    /// Node id of the arrival `(q, reg, bit)`, if `reg` is read at `q`.
    pub fn arrival(&self, q: PointId, reg: Reg, bit: u32) -> Option<usize> {
        debug_assert!(bit < self.width);
        self.arrival_base.get(&(q, reg)).map(|b| *b as usize + bit as usize)
    }

    /// Iterates over all site `(point, reg)` pairs in program order.
    pub fn site_pairs(&self) -> impl Iterator<Item = (PointId, Reg)> + '_ {
        let mut pairs: Vec<(PointId, Reg)> = self.site_of_base.clone();
        pairs.sort();
        pairs.into_iter()
    }

    /// Reverse lookup: if `node` is a site node, its fault site.
    pub fn site_of_node(&self, node: usize) -> Option<FaultSite> {
        if node == S0 || node >= self.len {
            return None;
        }
        let node = node as u32;
        // Find the greatest site base ≤ node among site bases.
        let idx = match self.site_bases_sorted.binary_search(&node) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let base = self.site_bases_sorted[idx];
        if node < base + self.width {
            let (point, reg) = self.site_of_base[idx];
            Some(FaultSite { point, reg, bit: node - base })
        } else {
            None // falls into an arrival range
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bec_ir::{parse_program, PointLayout};

    fn table() -> (bec_ir::Program, NodeTable) {
        let p = parse_program(
            "machine xlen=4 regs=4 zero=none\nfunc @main(args=0, ret=none) {\nentry:\n    andi r2, r1, 1\n    print r2\n    exit\n}\n",
        )
        .unwrap();
        let f = p.entry_function();
        let layout = PointLayout::of(f);
        let t = NodeTable::build(&p, f, &layout);
        (p.clone(), t)
    }

    #[test]
    fn allocates_sites_and_arrivals() {
        let (_, t) = table();
        // p0 accesses r2 (write) and r1 (read) → 2 site ranges + 1 arrival.
        // p1 accesses r2 (read) → 1 site + 1 arrival.
        // p2 (exit) → nothing.
        assert_eq!(t.len(), 1 + 5 * 4);
        let r1 = Reg::phys(1);
        let r2 = Reg::phys(2);
        assert!(t.site(PointId(0), r1, 0).is_some());
        assert!(t.site(PointId(0), r2, 3).is_some());
        assert!(t.arrival(PointId(0), r1, 0).is_some());
        assert!(t.arrival(PointId(0), r2, 0).is_none()); // r2 only written
        assert!(t.site(PointId(1), r2, 0).is_some());
        assert!(t.arrival(PointId(1), r2, 0).is_some());
        assert!(t.site(PointId(2), r1, 0).is_none());
    }

    #[test]
    fn reverse_lookup_roundtrips() {
        let (_, t) = table();
        for (p, r) in t.site_pairs() {
            for bit in 0..4 {
                let node = t.site(p, r, bit).unwrap();
                let fs = t.site_of_node(node).unwrap();
                assert_eq!((fs.point, fs.reg, fs.bit), (p, r, bit));
            }
        }
        // s0 and arrival nodes are not sites.
        assert!(t.site_of_node(S0).is_none());
        let arr = t.arrival(PointId(0), Reg::phys(1), 2).unwrap();
        assert!(t.site_of_node(arr).is_none());
    }

    #[test]
    fn zero_reg_is_excluded() {
        let p = parse_program(
            "func @main(args=0, ret=none) {\nentry:\n    mv t0, zero\n    print t0\n    exit\n}\n",
        )
        .unwrap();
        let f = p.entry_function();
        let layout = PointLayout::of(f);
        let t = NodeTable::build(&p, f, &layout);
        assert!(t.site(PointId(0), Reg::ZERO, 0).is_none());
        assert!(t.arrival(PointId(0), Reg::ZERO, 0).is_none());
        assert!(t.site(PointId(0), Reg::T0, 0).is_some());
    }
}
