//! The fault space `F = P × V` and its dense node numbering.
//!
//! Following §II of the paper, a *fault site* `(p, vⁱ)` is bit `i` of
//! register `v` in the time window that opens after program point `p`
//! executes (where `p` accesses `v`) and closes at the next access of `v`.
//!
//! The coalescing analysis additionally materializes one *arrival* node per
//! `(read point, operand register, bit)`: the effect, through that read's
//! computation only, of the bit being corrupted when it is read. Arrivals
//! realize the paper's temporary relation `R′` (Algorithm 3) without copying
//! the equivalence relation — see DESIGN.md §2.
//!
//! Node ids resolve arithmetically: per `(point, register)` pair the table
//! holds one base id in a flat array indexed `point_idx * num_regs +
//! reg_idx`, and bit `i` lives at `base + i`. The solver hot paths never
//! hash.

use bec_ir::{AccessTable, PointId, PointLayout, Program, Reg, RegMask};

/// A spatial+temporal fault site within one function: bit `bit` of register
/// `reg` in the window after point `point`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FaultSite {
    /// The access point opening the window.
    pub point: PointId,
    /// The register holding the bit.
    pub reg: Reg,
    /// Bit position (LSB = 0).
    pub bit: u32,
}

impl std::fmt::Display for FaultSite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {}^{})", self.point, self.reg, self.bit)
    }
}

/// The lookup interface the intra-instruction rules need: site and arrival
/// node ids. Implemented by the dense [`NodeTable`] and by the retained
/// reference solver's map-based table.
pub trait NodeQuery {
    /// Node id of fault site `(p, reg, bit)`, if `reg` is accessed at `p`.
    fn site(&self, p: PointId, reg: Reg, bit: u32) -> Option<usize>;
    /// Node id of the arrival `(q, reg, bit)`, if `reg` is read at `q`.
    fn arrival(&self, q: PointId, reg: Reg, bit: u32) -> Option<usize>;
}

/// Sentinel for "no node range allocated for this (point, register)".
const NONE: u32 = u32::MAX;

/// Dense numbering of coalescing nodes for one function.
///
/// Node 0 is `s0` (the intact execution). Sites and arrivals occupy `width`
/// consecutive ids per (point, register) pair; per-pair base ids live in
/// flat arrays indexed `point_idx * num_regs + reg_idx`.
#[derive(Clone, Debug)]
pub struct NodeTable {
    width: u32,
    nregs: u32,
    site_bases: Vec<u32>,
    arrival_bases: Vec<u32>,
    /// Per-point accessed (site-bearing) registers, for iteration.
    accessed: Vec<RegMask>,
    /// Reverse map for sites: base-assignment order → (point, reg).
    site_of_base: Vec<(PointId, Reg)>,
    site_bases_sorted: Vec<u32>,
    len: usize,
}

/// The node id of `s0` (intact semantics).
pub const S0: usize = 0;

impl NodeTable {
    /// Allocates nodes for every accessed `(point, register)` pair of the
    /// function (sites for reads and writes, arrivals for reads), skipping
    /// the hardwired zero register.
    pub fn build(program: &Program, func: &bec_ir::Function, layout: &PointLayout) -> NodeTable {
        let access = AccessTable::of(program, func, layout);
        NodeTable::build_with(program, layout, &access)
    }

    /// [`NodeTable::build`] with the per-function access table precomputed
    /// by the caller.
    pub fn build_with(program: &Program, layout: &PointLayout, access: &AccessTable) -> NodeTable {
        let width = program.config.xlen;
        let nregs = program.config.num_regs.min(64);
        let zero = match program.config.zero_reg {
            Some(z) => RegMask::of(z),
            None => RegMask::empty(),
        };
        let np = layout.len();
        let mut t = NodeTable {
            width,
            nregs,
            site_bases: vec![NONE; np * nregs as usize],
            arrival_bases: vec![NONE; np * nregs as usize],
            accessed: Vec::with_capacity(np),
            site_of_base: Vec::new(),
            site_bases_sorted: Vec::new(),
            len: 1, // node 0 = s0
        };
        for p in layout.iter() {
            // Site ranges in first-access order (reads, then writes).
            for &r in access.reads(p).iter().chain(access.writes(p)) {
                let Some(slot) = t.slot(p, r) else { continue };
                if zero.contains(r) || t.site_bases[slot] != NONE {
                    continue;
                }
                t.site_bases[slot] = t.len as u32;
                t.site_of_base.push((p, r));
                t.site_bases_sorted.push(t.len as u32);
                t.len += width as usize;
            }
            t.accessed.push(access.access_mask(p).difference(zero));
            // Arrival ranges for reads.
            for &r in access.reads(p) {
                let Some(slot) = t.slot(p, r) else { continue };
                if zero.contains(r) || t.arrival_bases[slot] != NONE {
                    continue;
                }
                t.arrival_bases[slot] = t.len as u32;
                t.len += width as usize;
            }
        }
        t
    }

    fn slot(&self, p: PointId, r: Reg) -> Option<usize> {
        (!r.is_virtual() && r.index() < self.nregs)
            .then(|| p.index() * self.nregs as usize + r.index() as usize)
    }

    /// Total number of nodes including `s0`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether only `s0` exists.
    pub fn is_empty(&self) -> bool {
        self.len <= 1
    }

    /// The machine word width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Base node id of the site range of `(p, reg)`, if accessed.
    pub fn site_base(&self, p: PointId, reg: Reg) -> Option<u32> {
        let b = self.site_bases[self.slot(p, reg)?];
        (b != NONE).then_some(b)
    }

    /// Base node id of the arrival range of `(q, reg)`, if read.
    pub fn arrival_base(&self, q: PointId, reg: Reg) -> Option<u32> {
        let b = self.arrival_bases[self.slot(q, reg)?];
        (b != NONE).then_some(b)
    }

    /// Node id of fault site `(p, reg, bit)`, if `reg` is accessed at `p`.
    pub fn site(&self, p: PointId, reg: Reg, bit: u32) -> Option<usize> {
        debug_assert!(bit < self.width);
        self.site_base(p, reg).map(|b| b as usize + bit as usize)
    }

    /// Node id of the arrival `(q, reg, bit)`, if `reg` is read at `q`.
    pub fn arrival(&self, q: PointId, reg: Reg, bit: u32) -> Option<usize> {
        debug_assert!(bit < self.width);
        self.arrival_base(q, reg).map(|b| b as usize + bit as usize)
    }

    /// Iterates over all site `(point, reg)` pairs in (point, register)
    /// order.
    pub fn site_pairs(&self) -> impl Iterator<Item = (PointId, Reg)> + '_ {
        self.accessed
            .iter()
            .enumerate()
            .flat_map(|(pi, m)| m.iter().map(move |r| (PointId(pi as u32), r)))
    }

    /// Reverse lookup: if `node` is a site node, its fault site.
    pub fn site_of_node(&self, node: usize) -> Option<FaultSite> {
        if node == S0 || node >= self.len {
            return None;
        }
        let node = node as u32;
        // Find the greatest site base ≤ node among site bases.
        let idx = match self.site_bases_sorted.binary_search(&node) {
            Ok(i) => i,
            Err(0) => return None,
            Err(i) => i - 1,
        };
        let base = self.site_bases_sorted[idx];
        if node < base + self.width {
            let (point, reg) = self.site_of_base[idx];
            Some(FaultSite { point, reg, bit: node - base })
        } else {
            None // falls into an arrival range
        }
    }
}

impl NodeQuery for NodeTable {
    fn site(&self, p: PointId, reg: Reg, bit: u32) -> Option<usize> {
        NodeTable::site(self, p, reg, bit)
    }

    fn arrival(&self, q: PointId, reg: Reg, bit: u32) -> Option<usize> {
        NodeTable::arrival(self, q, reg, bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bec_ir::{parse_program, PointLayout};

    fn table() -> (bec_ir::Program, NodeTable) {
        let p = parse_program(
            "machine xlen=4 regs=4 zero=none\nfunc @main(args=0, ret=none) {\nentry:\n    andi r2, r1, 1\n    print r2\n    exit\n}\n",
        )
        .unwrap();
        let f = p.entry_function();
        let layout = PointLayout::of(f);
        let t = NodeTable::build(&p, f, &layout);
        (p.clone(), t)
    }

    #[test]
    fn allocates_sites_and_arrivals() {
        let (_, t) = table();
        // p0 accesses r2 (write) and r1 (read) → 2 site ranges + 1 arrival.
        // p1 accesses r2 (read) → 1 site + 1 arrival.
        // p2 (exit) → nothing.
        assert_eq!(t.len(), 1 + 5 * 4);
        let r1 = Reg::phys(1);
        let r2 = Reg::phys(2);
        assert!(t.site(PointId(0), r1, 0).is_some());
        assert!(t.site(PointId(0), r2, 3).is_some());
        assert!(t.arrival(PointId(0), r1, 0).is_some());
        assert!(t.arrival(PointId(0), r2, 0).is_none()); // r2 only written
        assert!(t.site(PointId(1), r2, 0).is_some());
        assert!(t.arrival(PointId(1), r2, 0).is_some());
        assert!(t.site(PointId(2), r1, 0).is_none());
    }

    #[test]
    fn node_ids_resolve_arithmetically() {
        let (_, t) = table();
        let r1 = Reg::phys(1);
        let base = t.site_base(PointId(0), r1).unwrap() as usize;
        for bit in 0..4 {
            assert_eq!(t.site(PointId(0), r1, bit), Some(base + bit as usize));
        }
        let abase = t.arrival_base(PointId(0), r1).unwrap() as usize;
        for bit in 0..4 {
            assert_eq!(t.arrival(PointId(0), r1, bit), Some(abase + bit as usize));
        }
    }

    #[test]
    fn reverse_lookup_roundtrips() {
        let (_, t) = table();
        for (p, r) in t.site_pairs() {
            for bit in 0..4 {
                let node = t.site(p, r, bit).unwrap();
                let fs = t.site_of_node(node).unwrap();
                assert_eq!((fs.point, fs.reg, fs.bit), (p, r, bit));
            }
        }
        // s0 and arrival nodes are not sites.
        assert!(t.site_of_node(S0).is_none());
        let arr = t.arrival(PointId(0), Reg::phys(1), 2).unwrap();
        assert!(t.site_of_node(arr).is_none());
    }

    #[test]
    fn zero_reg_is_excluded() {
        let p = parse_program(
            "func @main(args=0, ret=none) {\nentry:\n    mv t0, zero\n    print t0\n    exit\n}\n",
        )
        .unwrap();
        let f = p.entry_function();
        let layout = PointLayout::of(f);
        let t = NodeTable::build(&p, f, &layout);
        assert!(t.site(PointId(0), Reg::ZERO, 0).is_none());
        assert!(t.arrival(PointId(0), Reg::ZERO, 0).is_none());
        assert!(t.site(PointId(0), Reg::T0, 0).is_some());
    }

    #[test]
    fn site_pairs_are_point_register_sorted() {
        let (_, t) = table();
        let pairs: Vec<_> = t.site_pairs().collect();
        let mut sorted = pairs.clone();
        sorted.sort();
        assert_eq!(pairs, sorted);
    }
}
