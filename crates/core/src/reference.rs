//! The retained *reference* solver: the seed repository's naive, map-based
//! analysis pipeline, kept verbatim-in-spirit as the oracle for the dense
//! engine.
//!
//! The dense engine (`bitvalue`, `fault`, `coalesce`) replaced hashed
//! per-pair storage, FIFO worklists and per-visit allocations with flat
//! arrays, an RPO priority worklist and arena node ids. This module keeps
//! the old data layout alive — `HashMap<(PointId, Reg), …>` values,
//! `BTreeSet` def–use fixpoints, node-interning maps, interned-universe
//! liveness bitsets — for two jobs:
//!
//! 1. **Equivalence**: `crates/core/tests/dense_equivalence.rs` pins that
//!    both engines produce the same [`SiteVerdict`] for every fault site of
//!    every suite benchmark (the intra-instruction rules themselves are
//!    shared through the [`ValueQuery`]/[`NodeQuery`] traits, so the test
//!    isolates exactly the parts that were rewritten).
//! 2. **Benchmarking**: `analysis_scaling` measures dense-vs-reference
//!    end-to-end analysis throughput; the reference is the seed baseline.
//!
//! Nothing here is exported from the crate root; the module is `#[doc
//! (hidden)]` and not part of the supported API.

use crate::analysis::{BecOptions, SiteVerdict};
use crate::arrival::IntraRules;
use crate::bitvalue::{transfer, ValueQuery};
use crate::fault::{NodeQuery, S0};
use bec_dataflow::{AbsValue, UnionFind};
use bec_ir::{Cfg, Function, MachineConfig, PointId, PointLayout, Program, Reg};
use std::collections::{BTreeSet, HashMap, VecDeque};

/// The seed liveness analysis: an interned register universe with
/// heap-allocated bitsets per point (the layout `bec_ir::Liveness` replaced
/// with one `RegMask` word per point). Retained so the liveness rewrite is
/// *inside* the equivalence oracle, not on both sides of it.
#[derive(Clone, Debug, Default)]
struct RefRegUniverse {
    regs: Vec<Reg>,
    index: HashMap<Reg, usize>,
}

impl RefRegUniverse {
    fn of(f: &Function, program: &Program) -> RefRegUniverse {
        let mut u = RefRegUniverse::default();
        let layout = PointLayout::of(f);
        for p in layout.iter() {
            let pi = layout.resolve(f, p);
            for r in pi.reads(program).into_iter().chain(pi.writes(program)) {
                u.intern(r);
            }
        }
        for r in f.sig.arg_regs() {
            u.intern(r);
        }
        u
    }

    fn intern(&mut self, r: Reg) -> usize {
        if let Some(&i) = self.index.get(&r) {
            return i;
        }
        let i = self.regs.len();
        self.regs.push(r);
        self.index.insert(r, i);
        i
    }

    fn id(&self, r: Reg) -> Option<usize> {
        self.index.get(&r).copied()
    }

    fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().copied()
    }

    fn len(&self) -> usize {
        self.regs.len()
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct RefRegSet {
    words: Vec<u64>,
}

impl RefRegSet {
    fn empty(n: usize) -> RefRegSet {
        RefRegSet { words: vec![0; n.div_ceil(64)] }
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    fn union_with(&mut self, other: &RefRegSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }
}

/// Seed per-point liveness (backward dataflow over `RefRegSet`s).
#[derive(Clone, Debug)]
pub struct RefLiveness {
    universe: RefRegUniverse,
    live_after: Vec<RefRegSet>,
}

impl RefLiveness {
    /// Computes per-point liveness for `f` (seed algorithm).
    pub fn compute(f: &Function, program: &Program) -> RefLiveness {
        let universe = RefRegUniverse::of(f, program);
        let layout = PointLayout::of(f);
        let cfg = Cfg::of(f);
        let n = universe.len();
        let zero = program.config.zero_reg;

        let reg_ids = |regs: Vec<Reg>| -> Vec<usize> {
            regs.into_iter().filter(|r| Some(*r) != zero).filter_map(|r| universe.id(r)).collect()
        };

        // Registers live out of a `ret`: the ABI-preserved set plus the
        // return-value registers. Empty for the entry function.
        let mut ret_seed = RefRegSet::empty(n);
        if f.name != program.entry {
            for r in universe.iter() {
                if (r == Reg::RA || r.is_callee_saved()) && Some(r) != zero {
                    ret_seed.insert(universe.id(r).expect("universe member"));
                }
            }
        }
        let exit_seeds: Vec<Option<RefRegSet>> = f
            .blocks
            .iter()
            .map(|blk| {
                if f.name == program.entry {
                    return None;
                }
                match &blk.term {
                    bec_ir::inst::TerminatorKind::Ret { reads } => {
                        let mut seed = ret_seed.clone();
                        for id in reg_ids(reads.clone()) {
                            seed.insert(id);
                        }
                        Some(seed)
                    }
                    _ => None,
                }
            })
            .collect();
        let block_exit_live =
            |b: bec_ir::BlockId| -> Option<&RefRegSet> { exit_seeds[b.index()].as_ref() };

        // Block-level fixpoint on live-in sets.
        let nb = f.blocks.len();
        let mut block_live_in = vec![RefRegSet::empty(n); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.postorder() {
                let mut live = RefRegSet::empty(n);
                for &s in cfg.successors(b) {
                    live.union_with(&block_live_in[s.index()]);
                }
                if let Some(seed) = block_exit_live(b) {
                    live.union_with(seed);
                }
                let blk = f.block(b);
                for off in (0..blk.point_count()).rev() {
                    let p = layout.point(b, off);
                    let pi = layout.resolve(f, p);
                    for w in reg_ids(pi.writes(program)) {
                        live.remove(w);
                    }
                    for r in reg_ids(pi.reads(program)) {
                        live.insert(r);
                    }
                }
                if block_live_in[b.index()] != live {
                    block_live_in[b.index()] = live;
                    changed = true;
                }
            }
        }

        // Final pass: record live-after per point.
        let mut live_after = vec![RefRegSet::empty(n); layout.len()];
        for (bi, blk) in f.blocks.iter().enumerate() {
            let b = bec_ir::BlockId(bi as u32);
            let mut live = RefRegSet::empty(n);
            for &s in cfg.successors(b) {
                live.union_with(&block_live_in[s.index()]);
            }
            if let Some(seed) = block_exit_live(b) {
                live.union_with(seed);
            }
            for off in (0..blk.point_count()).rev() {
                let p = layout.point(b, off);
                live_after[p.index()] = live.clone();
                let pi = layout.resolve(f, p);
                for w in reg_ids(pi.writes(program)) {
                    live.remove(w);
                }
                for r in reg_ids(pi.reads(program)) {
                    live.insert(r);
                }
            }
        }

        RefLiveness { universe, live_after }
    }

    /// Whether `r` is live immediately after point `p` (seed semantics).
    pub fn is_live_after(&self, p: PointId, r: Reg) -> bool {
        self.universe.id(r).is_some_and(|i| self.live_after[p.index()].contains(i))
    }
}

/// Def–use chains in the seed layout: hash maps of sorted vectors, computed
/// by per-register `BTreeSet` fixpoints that re-resolve instruction
/// operands on every visit.
#[derive(Clone, Debug)]
pub struct RefDefUse {
    reaching: HashMap<(PointId, Reg), Vec<PointId>>,
    users: HashMap<(PointId, Reg), Vec<PointId>>,
}

impl RefDefUse {
    /// Computes def–use chains for `f` (seed algorithm).
    pub fn compute(f: &Function, program: &Program) -> RefDefUse {
        let layout = PointLayout::of(f);
        let cfg = Cfg::of(f);
        let zero = program.config.zero_reg;

        let mut regs: BTreeSet<Reg> = BTreeSet::new();
        for p in layout.iter() {
            let pi = layout.resolve(f, p);
            regs.extend(pi.reads(program));
            regs.extend(pi.writes(program));
        }
        if let Some(z) = zero {
            regs.remove(&z);
        }

        let mut du = RefDefUse { reaching: HashMap::new(), users: HashMap::new() };
        for &r in &regs {
            du.chain_one_reg(f, program, &layout, &cfg, r);
        }
        du
    }

    fn chain_one_reg(
        &mut self,
        f: &Function,
        program: &Program,
        layout: &PointLayout,
        cfg: &Cfg,
        r: Reg,
    ) {
        let nb = f.blocks.len();

        // --- Forward: reaching definitions of r. ---
        let mut block_out: Vec<BTreeSet<PointId>> = vec![BTreeSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.reverse_postorder() {
                let mut defs: BTreeSet<PointId> = BTreeSet::new();
                for &pr in cfg.predecessors(b) {
                    defs.extend(block_out[pr.index()].iter().copied());
                }
                let blk = f.block(b);
                for off in 0..blk.point_count() {
                    let p = layout.point(b, off);
                    let pi = layout.resolve(f, p);
                    if pi.writes(program).contains(&r) {
                        defs.clear();
                        defs.insert(p);
                    }
                }
                if block_out[b.index()] != defs {
                    block_out[b.index()] = defs;
                    changed = true;
                }
            }
        }
        for (bi, blk) in f.blocks.iter().enumerate() {
            let b = bec_ir::BlockId(bi as u32);
            let mut defs: BTreeSet<PointId> = BTreeSet::new();
            for &pr in cfg.predecessors(b) {
                defs.extend(block_out[pr.index()].iter().copied());
            }
            for off in 0..blk.point_count() {
                let p = layout.point(b, off);
                let pi = layout.resolve(f, p);
                if pi.reads(program).contains(&r) {
                    self.reaching.insert((p, r), defs.iter().copied().collect());
                }
                if pi.writes(program).contains(&r) {
                    defs.clear();
                    defs.insert(p);
                }
            }
        }

        // --- Backward: readers reachable without redefinition. ---
        let mut block_in: Vec<BTreeSet<PointId>> = vec![BTreeSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.postorder() {
                let mut rd: BTreeSet<PointId> = BTreeSet::new();
                for &s in cfg.successors(b) {
                    rd.extend(block_in[s.index()].iter().copied());
                }
                let blk = f.block(b);
                for off in (0..blk.point_count()).rev() {
                    let p = layout.point(b, off);
                    let pi = layout.resolve(f, p);
                    if pi.writes(program).contains(&r) {
                        rd.clear();
                    }
                    if pi.reads(program).contains(&r) {
                        rd.insert(p);
                    }
                }
                if block_in[b.index()] != rd {
                    block_in[b.index()] = rd;
                    changed = true;
                }
            }
        }
        for (bi, blk) in f.blocks.iter().enumerate() {
            let b = bec_ir::BlockId(bi as u32);
            let mut rd: BTreeSet<PointId> = BTreeSet::new();
            for &s in cfg.successors(b) {
                rd.extend(block_in[s.index()].iter().copied());
            }
            for off in (0..blk.point_count()).rev() {
                let p = layout.point(b, off);
                let pi = layout.resolve(f, p);
                let accesses = pi.reads(program).contains(&r) || pi.writes(program).contains(&r);
                if accesses {
                    self.users.insert((p, r), rd.iter().copied().collect());
                }
                if pi.writes(program).contains(&r) {
                    rd.clear();
                }
                if pi.reads(program).contains(&r) {
                    rd.insert(p);
                }
            }
        }
    }

    /// `def(p, v)` (seed semantics).
    pub fn defs(&self, p: PointId, v: Reg) -> &[PointId] {
        self.reaching.get(&(p, v)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `use(p, v)` (seed semantics).
    pub fn uses(&self, p: PointId, v: Reg) -> &[PointId] {
        self.users.get(&(p, v)).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The seed bit-value solver: hashed in/out maps and a FIFO worklist.
#[derive(Clone, Debug)]
pub struct RefBitValues {
    width: u32,
    in_vals: HashMap<(PointId, Reg), AbsValue>,
    out_vals: HashMap<(PointId, Reg), AbsValue>,
}

impl RefBitValues {
    /// Runs the seed fixpoint on `func` of `program`.
    pub fn compute(program: &Program, func: &Function, du: &RefDefUse) -> RefBitValues {
        let config = &program.config;
        let layout = PointLayout::of(func);
        let width = config.xlen;
        let mut bv = RefBitValues { width, in_vals: HashMap::new(), out_vals: HashMap::new() };

        let mut queue: VecDeque<PointId> = layout.iter().collect();
        let mut queued: Vec<bool> = vec![true; layout.len()];
        while let Some(p) = queue.pop_front() {
            queued[p.index()] = false;
            let pi = layout.resolve(func, p);

            let reads = pi.reads(program);
            for &u in &reads {
                let v = bv.incoming(config, du, p, u);
                bv.in_vals.insert((p, u), v);
            }

            // Fresh buffer per visit: the seed transfer returned a new
            // `Vec`, and the reference keeps that allocation profile.
            let mut writes = Vec::new();
            transfer(config, program, pi, |r| bv.read_val(config, p, r), &mut writes);
            for (r, val) in writes {
                if config.is_zero_reg(r) {
                    continue;
                }
                let slot = bv.out_vals.entry((p, r)).or_insert_with(|| AbsValue::bottom(width));
                let new = slot.meet(&val);
                if new != *slot {
                    *slot = new;
                    for &q in du.uses(p, r) {
                        if !queued[q.index()] {
                            queued[q.index()] = true;
                            queue.push_back(q);
                        }
                    }
                }
            }
        }
        bv
    }

    fn incoming(&self, config: &MachineConfig, du: &RefDefUse, p: PointId, u: Reg) -> AbsValue {
        if config.is_zero_reg(u) {
            return AbsValue::constant(self.width, 0);
        }
        let defs = du.defs(p, u);
        if defs.is_empty() {
            return AbsValue::top(self.width);
        }
        let mut acc = AbsValue::bottom(self.width);
        for &d in defs {
            let dv =
                self.out_vals.get(&(d, u)).copied().unwrap_or_else(|| AbsValue::bottom(self.width));
            acc = acc.meet(&dv);
        }
        acc
    }

    fn read_val(&self, config: &MachineConfig, p: PointId, r: Reg) -> AbsValue {
        if config.is_zero_reg(r) {
            return AbsValue::constant(self.width, 0);
        }
        self.in_vals.get(&(p, r)).copied().unwrap_or_else(|| AbsValue::top(self.width))
    }

    /// `k(p, v)` for `v` read at `p` (seed semantics).
    pub fn value_in(&self, p: PointId, r: Reg) -> AbsValue {
        self.in_vals.get(&(p, r)).copied().unwrap_or_else(|| AbsValue::top(self.width))
    }

    /// `k(p, v)` after `p` (seed semantics).
    pub fn value_after(&self, p: PointId, r: Reg) -> AbsValue {
        self.out_vals
            .get(&(p, r))
            .or_else(|| self.in_vals.get(&(p, r)))
            .copied()
            .unwrap_or_else(|| AbsValue::top(self.width))
    }
}

impl ValueQuery for RefBitValues {
    fn value_in(&self, p: PointId, r: Reg) -> AbsValue {
        RefBitValues::value_in(self, p, r)
    }
}

/// The seed node table: interning hash maps from `(point, reg)` to node
/// range bases.
#[derive(Clone, Debug)]
pub struct RefNodeTable {
    width: u32,
    site_base: HashMap<(PointId, Reg), u32>,
    arrival_base: HashMap<(PointId, Reg), u32>,
    site_of_base: Vec<(PointId, Reg)>,
    len: usize,
}

impl RefNodeTable {
    /// Allocates nodes in the seed's interning order (reads then writes per
    /// point) — the same order the dense table uses, so node ids agree.
    pub fn build(program: &Program, func: &Function, layout: &PointLayout) -> RefNodeTable {
        let width = program.config.xlen;
        let mut t = RefNodeTable {
            width,
            site_base: HashMap::new(),
            arrival_base: HashMap::new(),
            site_of_base: Vec::new(),
            len: 1, // node 0 = s0
        };
        for p in layout.iter() {
            let pi = layout.resolve(func, p);
            let reads = pi.reads(program);
            let writes = pi.writes(program);
            let mut accessed: Vec<Reg> = Vec::new();
            for r in reads.iter().chain(writes.iter()) {
                if program.config.is_zero_reg(*r) || accessed.contains(r) {
                    continue;
                }
                accessed.push(*r);
            }
            for r in accessed {
                t.site_base.insert((p, r), t.len as u32);
                t.site_of_base.push((p, r));
                t.len += width as usize;
            }
            for r in reads {
                if program.config.is_zero_reg(r) || t.arrival_base.contains_key(&(p, r)) {
                    continue;
                }
                t.arrival_base.insert((p, r), t.len as u32);
                t.len += width as usize;
            }
        }
        t
    }

    /// Total number of nodes including `s0`.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether only `s0` exists.
    pub fn is_empty(&self) -> bool {
        self.len <= 1
    }

    /// Node id of fault site `(p, reg, bit)`.
    pub fn site(&self, p: PointId, reg: Reg, bit: u32) -> Option<usize> {
        self.site_base.get(&(p, reg)).map(|b| *b as usize + bit as usize)
    }

    /// Node id of the arrival `(q, reg, bit)`.
    pub fn arrival(&self, q: PointId, reg: Reg, bit: u32) -> Option<usize> {
        self.arrival_base.get(&(q, reg)).map(|b| *b as usize + bit as usize)
    }

    /// All site `(point, reg)` pairs in (point, register) order.
    pub fn site_pairs(&self) -> Vec<(PointId, Reg)> {
        let mut pairs = self.site_of_base.clone();
        pairs.sort();
        pairs
    }
}

impl NodeQuery for RefNodeTable {
    fn site(&self, p: PointId, reg: Reg, bit: u32) -> Option<usize> {
        RefNodeTable::site(self, p, reg, bit)
    }

    fn arrival(&self, q: PointId, reg: Reg, bit: u32) -> Option<usize> {
        RefNodeTable::arrival(self, q, reg, bit)
    }
}

/// Reference analysis results for one function.
pub struct RefFunctionAnalysis {
    /// Point numbering.
    pub layout: PointLayout,
    /// Seed def–use chains.
    pub defuse: RefDefUse,
    /// Seed bit values.
    pub values: RefBitValues,
    /// Seed node numbering.
    pub nodes: RefNodeTable,
    uf: UnionFind,
}

impl RefFunctionAnalysis {
    /// Class representative of site `(p, reg, bit)`.
    pub fn class_of(&self, p: PointId, reg: Reg, bit: u32) -> Option<usize> {
        self.nodes.site(p, reg, bit).map(|n| self.uf.find_imm(n))
    }

    /// The `[s0]` representative.
    pub fn s0_class(&self) -> usize {
        self.uf.find_imm(S0)
    }

    /// The verdict for site `(p, reg, bit)` (mirrors
    /// [`crate::BecAnalysis::site_verdict`]).
    pub fn site_verdict(&self, p: PointId, reg: Reg, bit: u32) -> Option<SiteVerdict> {
        let class = self.class_of(p, reg, bit)?;
        Some(if class == self.s0_class() {
            SiteVerdict::Masked
        } else {
            SiteVerdict::Live { class }
        })
    }
}

/// Runs the whole seed pipeline — liveness, map-based def–use, hashed
/// bit-value fixpoint, interned node table, coalescing to the fixpoint —
/// on one function.
pub fn analyze_function(
    program: &Program,
    func: &Function,
    options: &BecOptions,
) -> RefFunctionAnalysis {
    let layout = PointLayout::of(func);
    let liveness = RefLiveness::compute(func, program);
    let defuse = RefDefUse::compute(func, program);
    let values = RefBitValues::compute(program, func, &defuse);
    let nodes = RefNodeTable::build(program, func, &layout);

    let w = nodes.width;
    let mut uf = UnionFind::new(nodes.len());

    // Initialization: killed sites are masked (Alg. 2 lines 4-5).
    for &(p, r) in &nodes.site_pairs() {
        if !liveness.is_live_after(p, r) {
            for i in 0..w {
                uf.union(nodes.site(p, r, i).expect("site exists"), S0);
            }
        }
    }

    // Intra-instruction rules, shared with the dense engine.
    let intra =
        IntraRules { program, func, layout: &layout, values: &values, nodes: &nodes, options };
    intra.apply(&mut |a, b| {
        uf.union(a, b);
    });

    // Inter-instruction fixpoint, seed formulation (uncompressed finds).
    let site_pairs = nodes.site_pairs();
    loop {
        let before = uf.merge_count();
        for &(p, r) in &site_pairs {
            let users = defuse.uses(p, r);
            if users.is_empty() {
                continue;
            }
            let aligned_single_use = users.len() == 1 && {
                let q = users[0];
                layout.block_of(q) == layout.block_of(p) && q > p
            };
            for i in 0..w {
                let site = nodes.site(p, r, i).expect("site exists");
                let s0_rep = uf.find(S0);
                let all_masked = users
                    .iter()
                    .all(|&q| nodes.arrival(q, r, i).is_some_and(|a| uf.find_imm(a) == s0_rep));
                if all_masked {
                    uf.union(site, S0);
                } else if aligned_single_use {
                    if let Some(a) = nodes.arrival(users[0], r, i) {
                        uf.union(site, a);
                    }
                }
            }
        }
        if uf.merge_count() == before {
            break;
        }
    }

    RefFunctionAnalysis { layout, defuse, values, nodes, uf }
}

/// Reference analysis of every function of `program`, in program order.
pub fn analyze_program(program: &Program, options: &BecOptions) -> Vec<RefFunctionAnalysis> {
    program.functions.iter().map(|f| analyze_function(program, f, options)).collect()
}
