//! The BEC analysis orchestrator: per-function bit-value analysis plus
//! fault-index coalescing, with the paper's optional rule extensions.
//!
//! Functions are independent analysis units, so the orchestrator can run
//! them on a scoped `std::thread` pool ([`BecAnalysis::analyze_with_workers`]).
//! Workers pull function indices from a shared counter and the results are
//! re-slotted by index, so the analysis — including every
//! [`SiteVerdict`] — is byte-identical at any worker count.

use crate::bitvalue::BitValues;
use crate::coalesce::Coalescing;
use bec_ir::{AccessTable, Cfg, DefUse, Function, Liveness, PointId, PointLayout, Program, Reg};
use bec_telemetry::Telemetry;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Toggles for the coalescing rule set.
///
/// The defaults match the paper: `eval`-equivalence runs on branches and the
/// compare-like operations (`slt`, `sltu`, `seqz`, `snez` — Algorithm 3,
/// line 36), and both extensions beyond the paper are off. The extensions
/// are sound and are measured separately by the ablation benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BecOptions {
    /// Apply `eval`-equivalence to compare-like ops in addition to branches.
    pub eval_compare_ops: bool,
    /// Extension: a flip that provably reproduces the golden outcome of a
    /// branch/compare is masked through that use.
    pub golden_masking: bool,
    /// Extension: `eval`-equivalence across the two operands of a branch
    /// (the paper restricts equivalence to bits of the same operand).
    pub cross_operand_eval: bool,
}

impl Default for BecOptions {
    fn default() -> Self {
        BecOptions { eval_compare_ops: true, golden_masking: false, cross_operand_eval: false }
    }
}

impl BecOptions {
    /// The paper's rule set (same as `default`).
    pub fn paper() -> BecOptions {
        BecOptions::default()
    }

    /// All sound extensions enabled (upper bound for the ablation study).
    pub fn extended() -> BecOptions {
        BecOptions { eval_compare_ops: true, golden_masking: true, cross_operand_eval: true }
    }

    /// Value-level degenerate mode used as an ablation data point: no
    /// eval-equivalence on compare-like ops.
    pub fn branches_only() -> BecOptions {
        BecOptions { eval_compare_ops: false, golden_masking: false, cross_operand_eval: false }
    }
}

/// The static verdict of the BEC analysis for one fault site — the query
/// interface that differential fault-injection validation checks against
/// (`bec_sim`'s campaign engine treats `Masked` as a hard guarantee: a
/// masked site observed corrupting the execution is a soundness violation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SiteVerdict {
    /// The site is in `[s0]`: any flip of this bit in this window provably
    /// leaves the execution trace unchanged.
    Masked,
    /// The site is live; `class` is its function-local equivalence-class
    /// representative (all members of a class produce identical traces at
    /// corresponding occurrences).
    Live {
        /// Union-find representative within the function's node table.
        class: usize,
    },
}

impl SiteVerdict {
    /// Whether the verdict claims the fault can never corrupt the trace.
    pub fn is_masked(self) -> bool {
        matches!(self, SiteVerdict::Masked)
    }
}

/// Analysis results for one function.
#[derive(Clone, Debug)]
pub struct FunctionAnalysis {
    /// The function's name.
    pub name: String,
    /// Point numbering.
    pub layout: PointLayout,
    /// Per-point liveness.
    pub liveness: Liveness,
    /// Def–use chains (`def(p, v)` and `use(p, v)` of §II).
    pub defuse: DefUse,
    /// Global abstract bit values `k(p, v)` (Algorithm 1).
    pub values: BitValues,
    /// Fault-index coalescing result (Algorithms 2–3).
    pub coalescing: Coalescing,
}

/// Deterministic solver statistics of one whole-program analysis, plus the
/// (non-deterministic) wall time. Everything except `wall` is independent
/// of the worker count and of the host, so reports may print the counters
/// into byte-compared output and keep the timing on stderr.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisStats {
    /// Program points analyzed, across all functions.
    pub points: u64,
    /// Bit-value solver worklist pops until the fixpoint.
    pub solver_visits: u64,
    /// Inter-instruction coalescing fixpoint passes, summed over functions.
    pub coalesce_passes: u64,
    /// Union-find nodes allocated (`s0` + sites + arrivals), summed.
    pub uf_nodes: u64,
    /// Workers the analysis ran with.
    pub workers: usize,
    /// Wall-clock time of the whole analysis.
    pub wall: Duration,
}

impl AnalysisStats {
    /// Publishes the statistics onto the shared metric registry: the
    /// deterministic solver counters as `analysis.*` counters, the worker
    /// count as a gauge and the wall time as a (nondeterministic)
    /// `analysis.wall_ms` timing. This is the one source every exporter,
    /// bench bin and CLI report reads solver numbers from.
    pub fn record(&self, tel: &Telemetry) {
        tel.add("analysis.points", self.points);
        tel.add("analysis.solver_visits", self.solver_visits);
        tel.add("analysis.coalesce_passes", self.coalesce_passes);
        tel.add("analysis.uf_nodes", self.uf_nodes);
        tel.gauge("analysis.workers", self.workers as u64);
        tel.time_ms("analysis.wall_ms", self.wall.as_secs_f64() * 1e3);
    }
}

/// Whole-program BEC analysis results.
#[derive(Clone, Debug)]
pub struct BecAnalysis {
    functions: Vec<FunctionAnalysis>,
    options: BecOptions,
    stats: AnalysisStats,
}

fn analyze_function(program: &Program, f: &Function, options: &BecOptions) -> FunctionAnalysis {
    let layout = PointLayout::of(f);
    let cfg = Cfg::of(f);
    let access = AccessTable::of(program, f, &layout);
    let liveness = Liveness::compute_with(f, program, &layout, &cfg, &access);
    let defuse = DefUse::compute_with(f, program, &layout, &cfg, &access);
    let values = BitValues::compute_with(program, f, &layout, &cfg, &access, &defuse);
    let coalescing = Coalescing::compute_with(
        program, f, &layout, &access, &liveness, &defuse, &values, options,
    );
    FunctionAnalysis { name: f.name.clone(), layout, liveness, defuse, values, coalescing }
}

impl BecAnalysis {
    /// Analyzes every function of `program` on one worker.
    ///
    /// The program must be a verified machine program
    /// ([`bec_ir::verify_program`]); virtual registers or dangling calls
    /// make the underlying analyses panic.
    pub fn analyze(program: &Program, options: &BecOptions) -> BecAnalysis {
        BecAnalysis::analyze_with_workers(program, options, 1)
    }

    /// [`BecAnalysis::analyze`] on a scoped thread pool of `workers`
    /// threads (0 and 1 both mean sequential). Functions are independent
    /// analysis units distributed over a shared counter; results are
    /// slotted back by function index, so the analysis — classes, verdicts,
    /// statistics — is identical at any worker count.
    pub fn analyze_with_workers(
        program: &Program,
        options: &BecOptions,
        workers: usize,
    ) -> BecAnalysis {
        BecAnalysis::analyze_instrumented(program, options, workers, &Telemetry::disabled())
    }

    /// [`BecAnalysis::analyze_with_workers`] with instrumentation: records
    /// an `analyze` span with one `analyze-fn` child span per function (on
    /// the worker's trace timeline) and publishes [`AnalysisStats`] onto
    /// `tel`'s shared metric registry under the `analysis.*` names. With a
    /// disabled handle this is exactly `analyze_with_workers`.
    pub fn analyze_instrumented(
        program: &Program,
        options: &BecOptions,
        workers: usize,
        tel: &Telemetry,
    ) -> BecAnalysis {
        let started = Instant::now();
        let span = tel.span("analyze").arg("functions", program.functions.len());
        let nf = program.functions.len();
        let workers = workers.max(1).min(nf.max(1));
        let functions: Vec<FunctionAnalysis> = if workers <= 1 {
            program
                .functions
                .iter()
                .map(|f| {
                    let _fn_span = tel.span("analyze-fn").arg("name", &f.name);
                    analyze_function(program, f, options)
                })
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let mut slots: Vec<Option<FunctionAnalysis>> = (0..nf).map(|_| None).collect();
            let (tx, rx) = std::sync::mpsc::channel::<(usize, FunctionAnalysis)>();
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let tx = tx.clone();
                    let next = &next;
                    scope.spawn(move || loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(f) = program.functions.get(i) else { break };
                        let fa = {
                            let _fn_span =
                                tel.span_on(w as u32 + 1, "analyze-fn").arg("name", &f.name);
                            analyze_function(program, f, options)
                        };
                        if tx.send((i, fa)).is_err() {
                            break;
                        }
                    });
                }
                drop(tx);
                for (i, fa) in rx {
                    debug_assert!(slots[i].is_none(), "function {i} analyzed twice");
                    slots[i] = Some(fa);
                }
            });
            slots.into_iter().map(|s| s.expect("every function analyzed")).collect()
        };

        let stats = AnalysisStats {
            points: functions.iter().map(|f| f.layout.len() as u64).sum(),
            solver_visits: functions.iter().map(|f| f.values.visits()).sum(),
            coalesce_passes: functions.iter().map(|f| f.coalescing.passes() as u64).sum(),
            uf_nodes: functions.iter().map(|f| f.coalescing.node_count() as u64).sum(),
            workers,
            wall: started.elapsed(),
        };
        stats.record(tel);
        tel.add("analysis.functions", nf as u64);
        drop(span);
        BecAnalysis { functions, options: *options, stats }
    }

    /// Per-function results, in program order.
    pub fn functions(&self) -> &[FunctionAnalysis] {
        &self.functions
    }

    /// Results for the function named `name`.
    pub fn function_by_name(&self, name: &str) -> Option<&FunctionAnalysis> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Results for the `i`-th function.
    pub fn function(&self, i: usize) -> &FunctionAnalysis {
        &self.functions[i]
    }

    /// The options the analysis ran with.
    pub fn options(&self) -> &BecOptions {
        &self.options
    }

    /// Solver statistics of this analysis run.
    pub fn stats(&self) -> &AnalysisStats {
        &self.stats
    }

    /// The static verdict for fault site `(point, reg, bit)` of the `func`-th
    /// function: `Masked` when the coalescing proved the flip harmless,
    /// `Live { class }` otherwise.
    ///
    /// Returns `None` when `func` is out of range or `reg` is not accessed at
    /// `point` (the pair is then not a fault site of the analysis and no
    /// claim is made about it).
    pub fn site_verdict(
        &self,
        func: usize,
        point: PointId,
        reg: Reg,
        bit: u32,
    ) -> Option<SiteVerdict> {
        let fa = self.functions.get(func)?;
        let class = fa.coalescing.class_of(point, reg, bit)?;
        Some(if class == fa.coalescing.s0_class() {
            SiteVerdict::Masked
        } else {
            SiteVerdict::Live { class }
        })
    }

    /// The masked claims of one function, in canonical site order: every
    /// accessed `(point, register)` pair with at least one masked bit,
    /// carrying the mask of bits proven masked (bit `b` set ⇔ the verdict
    /// for bit `b` is `Masked`).
    ///
    /// This is the per-site re-verdict query the fuzzer's minimizer leans
    /// on: after every candidate shrink it re-analyzes the program and
    /// re-enumerates exactly the claims a violation witness must be drawn
    /// from, without materializing a full fault space.
    ///
    /// Returns an empty list when `func` is out of range.
    pub fn masked_sites(&self, program: &Program, func: usize) -> Vec<(PointId, Reg, u64)> {
        let Some(fa) = self.functions.get(func) else { return Vec::new() };
        let xlen = program.config.xlen;
        let mut out = Vec::new();
        for (p, r) in fa.coalescing.nodes().site_pairs() {
            let mut mask = 0u64;
            for bit in 0..xlen {
                let masked =
                    self.site_verdict(func, p, r, bit).expect("enumerated site").is_masked();
                mask |= u64::from(masked) << bit;
            }
            if mask != 0 {
                out.push((p, r, mask));
            }
        }
        out
    }

    /// Total number of equivalence classes across all functions (including
    /// each function's `[s0]`).
    pub fn class_count(&self) -> usize {
        self.functions.iter().map(|f| f.coalescing.class_count()).sum()
    }

    /// Whole-program site-bit accounting: how many fault-site bits the
    /// analysis classified, and how many of them it proved masked. This is
    /// the static masking-coverage figure variant studies compare across
    /// schedules (the site *set* is schedule-invariant — every instruction
    /// keeps its accesses — only the masked subset moves).
    pub fn site_counts(&self, program: &Program) -> SiteCounts {
        let mut counts = SiteCounts { total_site_bits: 0, masked_site_bits: 0 };
        for (fi, fa) in self.functions.iter().enumerate() {
            for (p, r) in fa.coalescing.nodes().site_pairs() {
                for bit in 0..program.config.xlen {
                    counts.total_site_bits += 1;
                    let v = self.site_verdict(fi, p, r, bit).expect("enumerated site");
                    counts.masked_site_bits += u64::from(v.is_masked());
                }
            }
        }
        counts
    }
}

/// Site-bit totals of one analysis (see [`BecAnalysis::site_counts`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SiteCounts {
    /// Fault-site bits classified (accessed `(point, reg)` pairs × xlen).
    pub total_site_bits: u64,
    /// Site bits proven masked (in `[s0]`).
    pub masked_site_bits: u64,
}
