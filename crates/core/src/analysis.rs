//! The BEC analysis orchestrator: per-function bit-value analysis plus
//! fault-index coalescing, with the paper's optional rule extensions.

use crate::bitvalue::BitValues;
use crate::coalesce::Coalescing;
use bec_ir::{DefUse, Liveness, PointId, PointLayout, Program, Reg};

/// Toggles for the coalescing rule set.
///
/// The defaults match the paper: `eval`-equivalence runs on branches and the
/// compare-like operations (`slt`, `sltu`, `seqz`, `snez` — Algorithm 3,
/// line 36), and both extensions beyond the paper are off. The extensions
/// are sound and are measured separately by the ablation benches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BecOptions {
    /// Apply `eval`-equivalence to compare-like ops in addition to branches.
    pub eval_compare_ops: bool,
    /// Extension: a flip that provably reproduces the golden outcome of a
    /// branch/compare is masked through that use.
    pub golden_masking: bool,
    /// Extension: `eval`-equivalence across the two operands of a branch
    /// (the paper restricts equivalence to bits of the same operand).
    pub cross_operand_eval: bool,
}

impl Default for BecOptions {
    fn default() -> Self {
        BecOptions { eval_compare_ops: true, golden_masking: false, cross_operand_eval: false }
    }
}

impl BecOptions {
    /// The paper's rule set (same as `default`).
    pub fn paper() -> BecOptions {
        BecOptions::default()
    }

    /// All sound extensions enabled (upper bound for the ablation study).
    pub fn extended() -> BecOptions {
        BecOptions { eval_compare_ops: true, golden_masking: true, cross_operand_eval: true }
    }

    /// Value-level degenerate mode used as an ablation data point: no
    /// eval-equivalence on compare-like ops.
    pub fn branches_only() -> BecOptions {
        BecOptions { eval_compare_ops: false, golden_masking: false, cross_operand_eval: false }
    }
}

/// The static verdict of the BEC analysis for one fault site — the query
/// interface that differential fault-injection validation checks against
/// (`bec_sim`'s campaign engine treats `Masked` as a hard guarantee: a
/// masked site observed corrupting the execution is a soundness violation).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SiteVerdict {
    /// The site is in `[s0]`: any flip of this bit in this window provably
    /// leaves the execution trace unchanged.
    Masked,
    /// The site is live; `class` is its function-local equivalence-class
    /// representative (all members of a class produce identical traces at
    /// corresponding occurrences).
    Live {
        /// Union-find representative within the function's node table.
        class: usize,
    },
}

impl SiteVerdict {
    /// Whether the verdict claims the fault can never corrupt the trace.
    pub fn is_masked(self) -> bool {
        matches!(self, SiteVerdict::Masked)
    }
}

/// Analysis results for one function.
#[derive(Clone, Debug)]
pub struct FunctionAnalysis {
    /// The function's name.
    pub name: String,
    /// Point numbering.
    pub layout: PointLayout,
    /// Per-point liveness.
    pub liveness: Liveness,
    /// Def–use chains (`def(p, v)` and `use(p, v)` of §II).
    pub defuse: DefUse,
    /// Global abstract bit values `k(p, v)` (Algorithm 1).
    pub values: BitValues,
    /// Fault-index coalescing result (Algorithms 2–3).
    pub coalescing: Coalescing,
}

/// Whole-program BEC analysis results.
#[derive(Clone, Debug)]
pub struct BecAnalysis {
    functions: Vec<FunctionAnalysis>,
    options: BecOptions,
}

impl BecAnalysis {
    /// Analyzes every function of `program`.
    ///
    /// The program must be a verified machine program
    /// ([`bec_ir::verify_program`]); virtual registers or dangling calls
    /// make the underlying analyses panic.
    pub fn analyze(program: &Program, options: &BecOptions) -> BecAnalysis {
        let functions = program
            .functions
            .iter()
            .map(|f| {
                let layout = PointLayout::of(f);
                let liveness = Liveness::compute(f, program);
                let defuse = DefUse::compute(f, program);
                let values = BitValues::compute(program, f, &defuse);
                let coalescing =
                    Coalescing::compute(program, f, &layout, &liveness, &defuse, &values, options);
                FunctionAnalysis {
                    name: f.name.clone(),
                    layout,
                    liveness,
                    defuse,
                    values,
                    coalescing,
                }
            })
            .collect();
        BecAnalysis { functions, options: *options }
    }

    /// Per-function results, in program order.
    pub fn functions(&self) -> &[FunctionAnalysis] {
        &self.functions
    }

    /// Results for the function named `name`.
    pub fn function_by_name(&self, name: &str) -> Option<&FunctionAnalysis> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Results for the `i`-th function.
    pub fn function(&self, i: usize) -> &FunctionAnalysis {
        &self.functions[i]
    }

    /// The options the analysis ran with.
    pub fn options(&self) -> &BecOptions {
        &self.options
    }

    /// The static verdict for fault site `(point, reg, bit)` of the `func`-th
    /// function: `Masked` when the coalescing proved the flip harmless,
    /// `Live { class }` otherwise.
    ///
    /// Returns `None` when `func` is out of range or `reg` is not accessed at
    /// `point` (the pair is then not a fault site of the analysis and no
    /// claim is made about it).
    pub fn site_verdict(
        &self,
        func: usize,
        point: PointId,
        reg: Reg,
        bit: u32,
    ) -> Option<SiteVerdict> {
        let fa = self.functions.get(func)?;
        let class = fa.coalescing.class_of(point, reg, bit)?;
        Some(if class == fa.coalescing.s0_class() {
            SiteVerdict::Masked
        } else {
            SiteVerdict::Live { class }
        })
    }

    /// Total number of equivalence classes across all functions (including
    /// each function's `[s0]`).
    pub fn class_count(&self) -> usize {
        self.functions.iter().map(|f| f.coalescing.class_count()).sum()
    }
}
