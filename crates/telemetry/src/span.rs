//! Hierarchical wall-clock spans and the Chrome-trace-format exporter.

use crate::{json_escape, Telemetry};
use std::collections::BTreeSet;

/// One completed span, in Chrome-trace "complete event" (`ph: "X"`) form.
#[derive(Clone, Debug)]
pub(crate) struct TraceEvent {
    pub name: String,
    pub tid: u32,
    /// Start, microseconds since telemetry creation.
    pub ts: u64,
    /// Duration in microseconds.
    pub dur: u64,
    pub args: Vec<(String, String)>,
}

/// An open span: records its wall-clock interval into the telemetry handle
/// when dropped. Obtained from [`Telemetry::span`] /
/// [`Telemetry::span_on`]; on a disabled handle the span is inert.
#[must_use = "a span records its interval when dropped — bind it to a `_span` local"]
pub struct Span<'t> {
    tel: &'t Telemetry,
    /// `None` on a disabled handle.
    open: Option<OpenSpan>,
}

struct OpenSpan {
    name: String,
    tid: u32,
    start_us: u64,
    args: Vec<(String, String)>,
}

impl<'t> Span<'t> {
    pub(crate) fn begin(tel: &'t Telemetry, tid: u32, name: &str) -> Span<'t> {
        let open = tel.is_enabled().then(|| OpenSpan {
            name: name.to_owned(),
            tid,
            start_us: tel.now_us(),
            args: Vec::new(),
        });
        Span { tel, open }
    }

    /// Attaches a key-value argument shown in the trace viewer's span
    /// details. Returns `self` for chaining.
    pub fn arg(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        if let Some(open) = &mut self.open {
            open.args.push((key.to_owned(), value.to_string()));
        }
        self
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(open) = self.open.take() {
            let end = self.tel.now_us();
            self.tel.push_event(TraceEvent {
                name: open.name,
                tid: open.tid,
                ts: open.start_us,
                dur: end.saturating_sub(open.start_us),
                args: open.args,
            });
        }
    }
}

/// Renders `events` as a Chrome-trace JSON document: thread-name metadata
/// for every timeline, then one complete event per span.
pub(crate) fn render_chrome_trace(events: &[TraceEvent]) -> String {
    let mut out = Vec::new();
    // Name the timelines so Perfetto shows "main" / "worker-N" lanes.
    let tids: BTreeSet<u32> = events.iter().map(|e| e.tid).collect();
    for tid in tids {
        let label = if tid == 0 { "main".to_owned() } else { format!("worker-{tid}") };
        out.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{label}\"}}}}"
        ));
    }
    for e in events {
        let args: Vec<String> = e
            .args
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect();
        out.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"bec\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
            json_escape(&e.name),
            e.tid,
            e.ts,
            e.dur,
            args.join(",")
        ));
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}", out.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_record_on_drop_with_args() {
        let tel = Telemetry::enabled();
        {
            let _outer = tel.span("outer").arg("file", "a.s");
            let _inner = tel.span_on(3, "inner");
        }
        let json = tel.trace_json();
        assert!(json.contains("\"outer\""), "{json}");
        assert!(json.contains("\"inner\""), "{json}");
        assert!(json.contains("\"file\":\"a.s\""), "{json}");
        assert!(json.contains("\"worker-3\""), "{json}");
        assert!(json.contains("\"main\""), "{json}");
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
    }

    #[test]
    fn empty_trace_is_valid() {
        let tel = Telemetry::enabled();
        assert_eq!(tel.trace_json(), "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}");
    }
}
