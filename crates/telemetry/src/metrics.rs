//! The metric registry's value types and the exported snapshot.

use crate::json_escape;
use std::collections::BTreeMap;

/// Number of log₂ histogram buckets: one for 0, one per possible
/// `ilog2(value)` of a non-zero `u64` (0..=63).
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
///
/// Bucket 0 counts zero observations; bucket `i ≥ 1` counts observations
/// with `ilog2(value) == i - 1` (i.e. values in `[2^(i-1), 2^i)`). Merging
/// is bucket-wise addition plus min/max/sum/count combination — an
/// associative, commutative operation, so any partition of the same
/// observation multiset over any number of workers merges to the same
/// histogram (the worker-count-independence property the campaign pool
/// relies on).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { count: 0, sum: 0, min: 0, max: 0, buckets: [0; BUCKETS] }
    }
}

impl Histogram {
    /// The bucket index of `value`.
    fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => v.ilog2() as usize + 1,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.min = if self.count == 0 { value } else { self.min.min(value) };
        self.max = self.max.max(value);
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.buckets[Histogram::bucket_of(value)] += 1;
    }

    /// Merges `other` into `self` (associative and commutative).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The mean observation (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The non-empty buckets as `(bucket index, count)` pairs, ascending.
    pub fn buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (i, c))
    }

    fn json_fields(&self) -> String {
        let buckets: Vec<String> = self.buckets().map(|(i, c)| format!("[{i},{c}]")).collect();
        format!(
            "\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]",
            self.count,
            self.sum,
            self.min,
            self.max,
            buckets.join(",")
        )
    }
}

/// One registered metric value.
///
/// The histogram variant dominates the enum's size, but registries hold
/// at most a few dozen metrics and the hot paths mutate in place, so the
/// indirection a box would add buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum Metric {
    /// A monotonically accumulated logical count.
    Counter(u64),
    /// A last-write-wins level.
    Gauge(u64),
    /// A wall-clock measurement in milliseconds (nondeterministic; kept
    /// out of every byte-compared artifact by the determinism contract).
    TimeMs(f64),
    /// A log₂-bucketed distribution.
    Hist(Histogram),
}

impl Metric {
    fn to_json(&self) -> String {
        match self {
            Metric::Counter(v) => format!("{{\"type\":\"counter\",\"value\":{v}}}"),
            Metric::Gauge(v) => format!("{{\"type\":\"gauge\",\"value\":{v}}}"),
            Metric::TimeMs(ms) => format!("{{\"type\":\"time_ms\",\"value\":{ms:.3}}}"),
            Metric::Hist(h) => format!("{{\"type\":\"histogram\",{}}}", h.json_fields()),
        }
    }
}

/// A point-in-time copy of a [`crate::Telemetry`] handle's metric
/// registry, name-sorted. This is the one schema shared by `--metrics-out`
/// snapshots and the committed `BENCH_*.json` baselines.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsSnapshot {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsSnapshot {
    pub(crate) fn new(metrics: BTreeMap<String, Metric>) -> MetricsSnapshot {
        MetricsSnapshot { metrics }
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// All metric names, ascending.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.metrics.keys().map(String::as_str)
    }

    /// The raw metric `name`.
    pub fn metric(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// The counter `name`, if it exists and is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name`, if it exists and is a gauge.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The timing `name` in milliseconds, if it exists and is a timing.
    pub fn time_ms(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(Metric::TimeMs(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`, if it exists and is a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.metrics.get(name) {
            Some(Metric::Hist(h)) => Some(h),
            _ => None,
        }
    }

    /// A copy keeping only the metrics for which `keep` returns true.
    ///
    /// Byte-compared baselines (the committed `BENCH_*.json` files) use
    /// this to drop the nondeterministic metrics — wall times and
    /// machine-dependent worker counts — while keeping the shared
    /// `--metrics-out` schema.
    pub fn filtered(&self, mut keep: impl FnMut(&str, &Metric) -> bool) -> MetricsSnapshot {
        MetricsSnapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|(name, metric)| keep(name, metric))
                .map(|(name, metric)| (name.clone(), metric.clone()))
                .collect(),
        }
    }

    /// Renders the snapshot as canonical JSON: metrics sorted by name,
    /// `{"version":1,"metrics":{...}}`. Equal snapshots render to
    /// identical bytes.
    pub fn to_json_string(&self) -> String {
        let body: Vec<String> = self
            .metrics
            .iter()
            .map(|(name, m)| format!("\"{}\":{}", json_escape(name), m.to_json()))
            .collect();
        format!("{{\"version\":1,\"metrics\":{{{}}}}}", body.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hist_of(values: &[u64]) -> Histogram {
        let mut h = Histogram::default();
        for &v in values {
            h.observe(v);
        }
        h
    }

    #[test]
    fn histogram_buckets_values_by_log2() {
        let h = hist_of(&[0, 1, 2, 3, 4, 1024, u64::MAX]);
        assert_eq!(h.count, 7);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
        let buckets: Vec<(usize, u64)> = h.buckets().collect();
        // 0 → bucket 0; 1 → 1; 2,3 → 2; 4 → 3; 1024 → 11; u64::MAX → 64.
        assert_eq!(buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (11, 1), (64, 1)]);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let a = hist_of(&[1, 5, 9]);
        let b = hist_of(&[0, 2]);
        let c = hist_of(&[1024, 7, 7]);

        // (a ∪ b) ∪ c == a ∪ (b ∪ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ∪ b == b ∪ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);

        // Merging an empty histogram is the identity (including min).
        let mut with_empty = a.clone();
        with_empty.merge(&Histogram::default());
        assert_eq!(with_empty, a);
        let mut from_empty = Histogram::default();
        from_empty.merge(&a);
        assert_eq!(from_empty, a);
    }

    #[test]
    fn histogram_merge_is_partition_independent() {
        // The same observation multiset, partitioned three different ways
        // (1, 2 and 5 "workers"), merges to one histogram.
        let all: Vec<u64> = vec![0, 1, 3, 3, 8, 100, 4096, 4096, 9, 2];
        let whole = hist_of(&all);
        for parts in [2usize, 5] {
            let mut merged = Histogram::default();
            for w in 0..parts {
                let mut local = Histogram::default();
                for (i, &v) in all.iter().enumerate() {
                    if i % parts == w {
                        local.observe(v);
                    }
                }
                merged.merge(&local);
            }
            assert_eq!(merged, whole, "{parts}-way partition diverged");
        }
        assert_eq!(whole.mean(), all.iter().sum::<u64>() as f64 / all.len() as f64);
    }

    #[test]
    fn snapshot_json_is_sorted_and_stable() {
        let mut m = BTreeMap::new();
        m.insert("b.counter".to_owned(), Metric::Counter(2));
        m.insert("a.gauge".to_owned(), Metric::Gauge(7));
        m.insert("c.hist".to_owned(), Metric::Hist(hist_of(&[1, 1])));
        m.insert("d.time".to_owned(), Metric::TimeMs(1.5));
        let snap = MetricsSnapshot::new(m);
        let json = snap.to_json_string();
        assert_eq!(
            json,
            "{\"version\":1,\"metrics\":{\
             \"a.gauge\":{\"type\":\"gauge\",\"value\":7},\
             \"b.counter\":{\"type\":\"counter\",\"value\":2},\
             \"c.hist\":{\"type\":\"histogram\",\"count\":2,\"sum\":2,\"min\":1,\"max\":1,\"buckets\":[[1,2]]},\
             \"d.time\":{\"type\":\"time_ms\",\"value\":1.500}}}"
        );
        assert_eq!(snap.counter("b.counter"), Some(2));
        assert_eq!(snap.gauge("a.gauge"), Some(7));
        assert_eq!(snap.time_ms("d.time"), Some(1.5));
        assert_eq!(snap.histogram("c.hist").map(|h| h.count), Some(2));
        assert_eq!(snap.counter("a.gauge"), None, "type-checked accessors");

        // A deterministic baseline view: drop the wall-time metric.
        let logical = snap.filtered(|_, m| !matches!(m, Metric::TimeMs(_)));
        assert_eq!(logical.names().collect::<Vec<_>>(), vec!["a.gauge", "b.counter", "c.hist"]);
        assert_eq!(logical.time_ms("d.time"), None);
    }
}
