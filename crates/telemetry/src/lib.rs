//! Deterministic-by-construction instrumentation for the BEC stack:
//! hierarchical spans, typed metrics and trace export, with no external
//! dependencies (matching the workspace's std-only discipline).
//!
//! Every engine in the stack (analyzer, campaign pool, study orchestrator)
//! threads a [`Telemetry`] handle through its hot paths. The handle is
//! either *disabled* — every call is a near-free no-op, the default for
//! library users and tests — or *enabled*, in which case it collects:
//!
//! * **spans** — wall-clock intervals with a name, a thread id and
//!   key-value arguments, exported as Chrome-trace-format JSON
//!   ([`Telemetry::trace_json`]) loadable in `chrome://tracing` or
//!   [Perfetto](https://ui.perfetto.dev);
//! * **metrics** — named [counters](Telemetry::add),
//!   [gauges](Telemetry::gauge), [timings](Telemetry::time_ms) and
//!   log₂-bucketed [histograms](Telemetry::observe) in a shared registry,
//!   exported as a machine-readable snapshot
//!   ([`Telemetry::metrics_json`]);
//! * **progress** — a throttled live progress line on stderr
//!   ([`Telemetry::meter`]) and typed [`ProgressEvent`]s for orchestrators
//!   that stream structured progress to a caller.
//!
//! # The determinism contract
//!
//! Instrumentation must never change what the instrumented engines
//! *output*. Concretely:
//!
//! * wall-clock time and thread attribution exist **only** in the trace
//!   export, the `time_ms` metrics and the stderr progress lines — never
//!   in engine stdout, golden files or resumable report artifacts;
//! * *logical* counters and histograms (runs, solver visits, simulated
//!   cycles, …) are built from per-item observations combined with
//!   associative, commutative merges ([`Histogram::merge`], counter
//!   addition), so their totals are independent of worker count and
//!   scheduling order — the property `crates/telemetry`'s unit tests and
//!   the pool-level determinism suite pin;
//! * a disabled handle performs no locking and no allocation, so
//!   uninstrumented runs behave exactly like pre-telemetry builds.
//!
//! ```
//! use bec_telemetry::Telemetry;
//!
//! let tel = Telemetry::enabled();
//! {
//!     let _span = tel.span("work").arg("items", 3);
//!     tel.add("work.items", 3);
//!     tel.observe("work.sizes", 17);
//! }
//! let snap = tel.snapshot();
//! assert_eq!(snap.counter("work.items"), Some(3));
//! assert!(tel.trace_json().contains("\"work\""));
//! ```

mod metrics;
mod progress;
mod span;

pub use metrics::{Histogram, Metric, MetricsSnapshot};
pub use progress::{group_digits, Phase, ProgressEvent, ProgressMeter};
pub use span::Span;

use span::TraceEvent;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

struct Inner {
    start: Instant,
    events: Mutex<Vec<TraceEvent>>,
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The instrumentation handle threaded through the BEC engines.
///
/// Cloning is cheap (an [`Arc`] bump); clones share one span buffer and
/// one metric registry, so a CLI invocation collects everything its
/// engines record into a single trace/snapshot. A
/// [disabled](Telemetry::disabled) handle turns every recording call into
/// a no-op.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A no-op handle: every recording call returns immediately, exports
    /// are empty. This is the default for library users — engines take
    /// `&Telemetry` unconditionally and stay zero-overhead without one.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// A collecting handle with an empty span buffer and metric registry.
    pub fn enabled() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                start: Instant::now(),
                events: Mutex::new(Vec::new()),
                metrics: Mutex::new(BTreeMap::new()),
            })),
        }
    }

    /// Whether this handle collects anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Microseconds since this handle was created (0 when disabled).
    pub(crate) fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => inner.start.elapsed().as_micros() as u64,
            None => 0,
        }
    }

    pub(crate) fn push_event(&self, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            inner.events.lock().expect("event buffer poisoned").push(event);
        }
    }

    fn with_metric(
        &self,
        name: &str,
        update: impl FnOnce(&mut Metric),
        init: impl FnOnce() -> Metric,
    ) {
        if let Some(inner) = &self.inner {
            let mut metrics = inner.metrics.lock().expect("metric registry poisoned");
            update(metrics.entry(name.to_owned()).or_insert_with(init));
        }
    }

    /// Adds `delta` to the counter `name` (creating it at 0).
    ///
    /// Counters are *logical* by convention: record per-item or per-batch
    /// quantities whose sum is independent of how work was partitioned
    /// over threads.
    pub fn add(&self, name: &str, delta: u64) {
        self.with_metric(
            name,
            |m| {
                if let Metric::Counter(v) = m {
                    *v += delta;
                }
            },
            || Metric::Counter(0),
        );
    }

    /// Sets the gauge `name` to `value` (last write wins — set gauges from
    /// single-threaded code for deterministic snapshots).
    pub fn gauge(&self, name: &str, value: u64) {
        self.with_metric(name, |m| *m = Metric::Gauge(value), || Metric::Gauge(value));
    }

    /// Records the wall-clock measurement `name` in milliseconds.
    /// Timing metrics are nondeterministic by nature; they live only in
    /// trace/metrics exports, never in engine stdout or report files.
    pub fn time_ms(&self, name: &str, ms: f64) {
        self.with_metric(name, |m| *m = Metric::TimeMs(ms), || Metric::TimeMs(ms));
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: u64) {
        self.with_metric(
            name,
            |m| {
                if let Metric::Hist(h) = m {
                    h.observe(value);
                }
            },
            || Metric::Hist(Histogram::default()),
        );
    }

    /// Merges a locally aggregated histogram into the registry — the
    /// batched form of [`Telemetry::observe`] worker threads use (one
    /// registry lock per batch instead of per observation).
    pub fn merge_hist(&self, name: &str, hist: &Histogram) {
        self.with_metric(
            name,
            |m| {
                if let Metric::Hist(h) = m {
                    h.merge(hist);
                }
            },
            || Metric::Hist(Histogram::default()),
        );
    }

    /// Opens a span named `name` on the main timeline (tid 0). The span
    /// records its wall-clock interval when dropped.
    pub fn span(&self, name: &str) -> Span<'_> {
        self.span_on(0, name)
    }

    /// Opens a span on worker timeline `tid` (Chrome-trace thread id; use
    /// a stable per-worker index so lanes line up in the viewer).
    pub fn span_on(&self, tid: u32, name: &str) -> Span<'_> {
        Span::begin(self, tid, name)
    }

    /// A throttled stderr progress meter for a long-running operation of
    /// `total` items. Silent when this handle is disabled.
    pub fn meter(&self, label: &str, total: u64) -> ProgressMeter {
        ProgressMeter::new(self.is_enabled(), label, total)
    }

    /// A point-in-time copy of the metric registry.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(inner) => MetricsSnapshot::new(
                inner.metrics.lock().expect("metric registry poisoned").clone(),
            ),
            None => MetricsSnapshot::new(BTreeMap::new()),
        }
    }

    /// The collected spans as Chrome-trace-format JSON (the
    /// `{"traceEvents": [...]}` object form), loadable in
    /// `chrome://tracing` or Perfetto.
    pub fn trace_json(&self) -> String {
        let events = match &self.inner {
            Some(inner) => inner.events.lock().expect("event buffer poisoned").clone(),
            None => Vec::new(),
        };
        span::render_chrome_trace(&events)
    }

    /// The metric registry as snapshot JSON (see
    /// [`MetricsSnapshot::to_json_string`]).
    pub fn metrics_json(&self) -> String {
        self.snapshot().to_json_string()
    }

    /// Writes [`Telemetry::trace_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_trace(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.trace_json() + "\n")
    }

    /// Writes [`Telemetry::metrics_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_metrics(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.metrics_json() + "\n")
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_enabled()).finish()
    }
}

/// Escapes `s` as the body of a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        tel.add("a", 1);
        tel.gauge("g", 2);
        tel.observe("h", 3);
        tel.time_ms("t", 1.0);
        drop(tel.span("s").arg("k", "v"));
        assert!(!tel.is_enabled());
        assert!(tel.snapshot().is_empty());
        assert_eq!(tel.trace_json(), span::render_chrome_trace(&[]));
    }

    #[test]
    fn counters_and_gauges_register() {
        let tel = Telemetry::enabled();
        tel.add("runs", 2);
        tel.add("runs", 3);
        tel.gauge("workers", 8);
        tel.gauge("workers", 4);
        tel.observe("cycles", 0);
        tel.observe("cycles", 9);
        let snap = tel.snapshot();
        assert_eq!(snap.counter("runs"), Some(5));
        assert_eq!(snap.gauge("workers"), Some(4));
        let h = snap.histogram("cycles").unwrap();
        assert_eq!((h.count, h.sum, h.min, h.max), (2, 9, 0, 9));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn clones_share_one_registry() {
        let tel = Telemetry::enabled();
        let clone = tel.clone();
        clone.add("shared", 7);
        drop(clone.span("child"));
        assert_eq!(tel.snapshot().counter("shared"), Some(7));
        assert!(tel.trace_json().contains("\"child\""));
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
