//! Live progress: a throttled stderr meter for long-running pools and the
//! typed progress events orchestrators stream to their callers.

use std::time::{Duration, Instant};

/// Formats `n` with `,` thousands separators (`1234567` → `"1,234,567"`).
pub fn group_digits(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::with_capacity(s.len() + s.len() / 3);
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Formats a rate as `412`, `3.2k` or `1.5M` per second.
fn rate(per_sec: f64) -> String {
    if per_sec >= 1e6 {
        format!("{:.1}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1}k", per_sec / 1e3)
    } else {
        format!("{per_sec:.0}")
    }
}

/// A throttled live progress line on stderr: at most one line per throttle
/// interval, showing completion, throughput, an ETA and caller-supplied
/// tallies. Timing never reaches stdout, so the meter is free under the
/// determinism contract. Created via [`crate::Telemetry::meter`]; inert
/// when the telemetry handle was disabled.
pub struct ProgressMeter {
    enabled: bool,
    label: String,
    total: u64,
    started: Instant,
    last_emit: Option<Instant>,
    throttle: Duration,
}

impl ProgressMeter {
    pub(crate) fn new(enabled: bool, label: &str, total: u64) -> ProgressMeter {
        ProgressMeter {
            enabled,
            label: label.to_owned(),
            total,
            started: Instant::now(),
            last_emit: None,
            throttle: Duration::from_millis(200),
        }
    }

    /// Reports `done` completed items plus extra `key value` tallies.
    /// Emits at most one stderr line per throttle interval; quick
    /// operations finish without printing anything.
    pub fn update(&mut self, done: u64, extras: &[(&str, u64)]) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        let due = match self.last_emit {
            Some(last) => now.duration_since(last) >= self.throttle,
            // The first line is also throttled: nothing is printed before
            // one interval has elapsed, keeping fast runs silent.
            None => now.duration_since(self.started) >= self.throttle,
        };
        if !due || done == 0 {
            return;
        }
        self.last_emit = Some(now);
        let elapsed = now.duration_since(self.started).as_secs_f64();
        let per_sec = done as f64 / elapsed.max(1e-9);
        let eta = (self.total.saturating_sub(done)) as f64 / per_sec.max(1e-9);
        let mut line = format!(
            "{}: {}/{} ({:.0} %), {}/s, ETA {:.1} s",
            self.label,
            group_digits(done),
            group_digits(self.total),
            100.0 * done as f64 / (self.total.max(1)) as f64,
            rate(per_sec),
            eta,
        );
        for (k, v) in extras {
            line.push_str(&format!(", {k} {}", group_digits(*v)));
        }
        eprintln!("{line}");
    }
}

/// The pipeline phase a [`ProgressEvent`] reports on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Variants were derived from the shared scoring analysis.
    Schedule,
    /// Semantic equivalence against the baseline was established.
    Verify,
    /// The variant's differential campaign completed.
    Campaign,
}

impl Phase {
    /// The phase's stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Schedule => "schedule",
            Phase::Verify => "verify",
            Phase::Campaign => "campaign",
        }
    }
}

/// One typed progress event of a study-style orchestrator: which
/// benchmark/variant progressed, through which [`Phase`], with named
/// counters (runs, early exits, wall milliseconds, …). The structured form
/// exists so a future `bec serve` can serialize events onto a job stream;
/// the CLI renders them to stderr lines via [`ProgressEvent::render`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Benchmark (or program label) the event concerns.
    pub benchmark: String,
    /// Variant (scheduling criterion) within the benchmark; empty for
    /// benchmark-level events.
    pub variant: String,
    /// Pipeline phase that completed.
    pub phase: Phase,
    /// Named counters. By convention `wall_ms` and `workers` are the only
    /// nondeterministic entries; everything else is a logical count.
    pub counters: Vec<(&'static str, u64)>,
}

impl ProgressEvent {
    /// A human-readable one-line rendering, e.g.
    /// `crc32/best campaign: runs 4,000, early_exits 1,203, wall_ms 12`.
    pub fn render(&self) -> String {
        let subject = if self.variant.is_empty() {
            self.benchmark.clone()
        } else {
            format!("{}/{}", self.benchmark, self.variant)
        };
        let counters: Vec<String> =
            self.counters.iter().map(|(k, v)| format!("{k} {}", group_digits(*v))).collect();
        format!("{subject} {}: {}", self.phase.name(), counters.join(", "))
    }

    /// The counter `name`, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| *k == name).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digits_group_in_threes() {
        assert_eq!(group_digits(0), "0");
        assert_eq!(group_digits(999), "999");
        assert_eq!(group_digits(1000), "1,000");
        assert_eq!(group_digits(1234567), "1,234,567");
    }

    #[test]
    fn rates_humanize() {
        assert_eq!(rate(412.4), "412");
        assert_eq!(rate(3_210.0), "3.2k");
        assert_eq!(rate(1_500_000.0), "1.5M");
    }

    #[test]
    fn events_render_and_query() {
        let e = ProgressEvent {
            benchmark: "crc32".into(),
            variant: "best".into(),
            phase: Phase::Campaign,
            counters: vec![("runs", 4000), ("early_exits", 1203)],
        };
        assert_eq!(e.render(), "crc32/best campaign: runs 4,000, early_exits 1,203");
        assert_eq!(e.counter("runs"), Some(4000));
        assert_eq!(e.counter("nope"), None);
        let b = ProgressEvent {
            benchmark: "crc32".into(),
            variant: String::new(),
            phase: Phase::Schedule,
            counters: vec![("variants", 3)],
        };
        assert_eq!(b.render(), "crc32 schedule: variants 3");
    }

    #[test]
    fn meter_is_silent_when_disabled_or_fast() {
        // Exercised for coverage; output goes to stderr and short runs
        // never print (the first emit is throttled too).
        let mut m = ProgressMeter::new(false, "x", 10);
        m.update(5, &[("k", 1)]);
        let mut m = ProgressMeter::new(true, "x", 10);
        m.update(5, &[("k", 1)]);
        assert!(m.last_emit.is_none(), "fast update must stay below the throttle");
    }
}
