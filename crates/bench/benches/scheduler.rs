//! Scheduler benches: cost of vulnerability-aware list scheduling.

use bec_sched::{schedule_program, Criterion as SchedCriterion};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule_program");
    group.sample_size(10);
    for name in ["aes", "sha"] {
        let program = bec_suite::benchmark(name).unwrap().compile().unwrap();
        group.bench_function(name, |b| {
            b.iter(|| schedule_program(std::hint::black_box(&program), SchedCriterion::BestReliability))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
