//! Simulator throughput: golden-run cycles per second per benchmark.

use bec_sim::{SimLimits, Simulator};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_golden_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("golden_run");
    group.sample_size(10);
    for b in bec_suite::all() {
        let program = b.compile().expect("compiles");
        let sim = Simulator::with_limits(&program, SimLimits { max_cycles: 10_000_000 });
        let cycles = sim.run_golden().cycles();
        group.throughput(Throughput::Elements(cycles));
        group.bench_function(b.name, |bencher| bencher.iter(|| sim.run_golden()));
    }
    group.finish();
}

criterion_group!(benches, bench_golden_runs);
criterion_main!(benches);
