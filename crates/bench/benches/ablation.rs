//! Ablation benches (DESIGN.md §6): analysis cost under different
//! coalescing rule sets.

use bec_core::{BecAnalysis, BecOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_rule_sets(c: &mut Criterion) {
    let program = bec_suite::benchmark("aes").unwrap().compile().unwrap();
    let mut group = c.benchmark_group("rule_sets_aes");
    group.sample_size(10);
    let variants: [(&str, BecOptions); 3] = [
        ("branches_only", BecOptions::branches_only()),
        ("paper", BecOptions::paper()),
        ("extended", BecOptions::extended()),
    ];
    for (name, opts) in variants {
        group.bench_function(name, |b| {
            b.iter(|| BecAnalysis::analyze(std::hint::black_box(&program), &opts))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rule_sets);
criterion_main!(benches);
