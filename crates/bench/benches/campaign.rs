//! Campaign benches: end-to-end fault-injection cost with and without BEC
//! pruning — the practical payoff of use case 1.

use bec_core::{BecAnalysis, BecOptions};
use bec_sim::campaign::{bit_level_faults, run_campaign, value_level_faults, CampaignKind};
use bec_sim::Simulator;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_campaigns(c: &mut Criterion) {
    let bench = bec_suite::crc32::scaled(1);
    let program = bench.compile().expect("compiles");
    let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
    let sim = Simulator::new(&program);
    let golden = sim.run_golden();
    let value = value_level_faults(&program, &bec, &golden);
    let bits = bit_level_faults(&program, &bec, &golden);

    let mut group = c.benchmark_group("fi_campaign_crc32_tiny");
    group.sample_size(10);
    group.bench_function("inject_on_read", |b| {
        b.iter(|| run_campaign(&sim, &golden, &value, CampaignKind::ValueLevel, 4))
    });
    group.bench_function("bec_pruned", |b| {
        b.iter(|| run_campaign(&sim, &golden, &bits, CampaignKind::BitLevel, 4))
    });
    group.finish();
}

criterion_group!(benches, bench_campaigns);
criterion_main!(benches);
