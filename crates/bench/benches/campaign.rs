//! Campaign benches: end-to-end fault-injection cost with and without BEC
//! pruning — the practical payoff of use case 1.

use bec_core::{BecAnalysis, BecOptions};
use bec_sim::campaign::{bit_level_faults, run_campaign, value_level_faults, CampaignKind};
use bec_sim::shard::{site_fault_space, CampaignSpec, ShardPlan};
use bec_sim::{default_checkpoint_interval, pool, CheckpointLog, Simulator};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_campaigns(c: &mut Criterion) {
    let bench = bec_suite::crc32::scaled(1);
    let program = bench.compile().expect("compiles");
    let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
    let sim = Simulator::new(&program);
    let golden = sim.run_golden();
    let value = value_level_faults(&program, &bec, &golden);
    let bits = bit_level_faults(&program, &bec, &golden);

    let mut group = c.benchmark_group("fi_campaign_crc32_tiny");
    group.sample_size(10);
    group.bench_function("inject_on_read", |b| {
        b.iter(|| run_campaign(&sim, &golden, &value, CampaignKind::ValueLevel, 4))
    });
    group.bench_function("bec_pruned", |b| {
        b.iter(|| run_campaign(&sim, &golden, &bits, CampaignKind::BitLevel, 4))
    });
    group.finish();
}

/// Throughput of the sharded differential campaign engine: whole classified
/// fault space, batched per-shard aggregation, 1 vs 4 workers, from-scratch
/// vs checkpointed.
fn bench_sharded_engine(c: &mut Criterion) {
    let bench = bec_suite::crc32::scaled(1);
    let program = bench.compile().expect("compiles");
    let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
    let sim = Simulator::new(&program);
    let probe = sim.run_golden();
    let (golden, ckpts) =
        sim.run_golden_checkpointed(default_checkpoint_interval(probe.cycles()));
    let plan =
        ShardPlan::build(site_fault_space(&program, &bec, &golden), CampaignSpec::exhaustive(64));

    let mut group = c.benchmark_group("sharded_campaign_crc32_tiny");
    group.sample_size(10);
    let disabled = CheckpointLog::disabled();
    for workers in [1usize, 4] {
        group.bench_function(format!("{workers}_workers_from_scratch"), |b| {
            b.iter(|| {
                pool::run_sharded(&sim, &golden, &disabled, &plan, workers, None, "crc32").unwrap()
            })
        });
        group.bench_function(format!("{workers}_workers_checkpointed"), |b| {
            b.iter(|| {
                pool::run_sharded(&sim, &golden, &ckpts, &plan, workers, None, "crc32").unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_campaigns, bench_sharded_engine);
criterion_main!(benches);
