//! Analysis-cost benches: the paper claims "no significant compile-time
//! overhead" (§V); these measure the BEC analysis per benchmark.

use bec_core::{BecAnalysis, BecOptions};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("bec_analysis");
    group.sample_size(10);
    for b in bec_suite::all() {
        let program = b.compile().expect("compiles");
        group.bench_function(b.name, |bencher| {
            bencher.iter(|| BecAnalysis::analyze(std::hint::black_box(&program), &BecOptions::paper()))
        });
    }
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    // Phase split on one representative benchmark.
    let program = bec_suite::benchmark("sha").unwrap().compile().unwrap();
    let mut group = c.benchmark_group("analysis_phases_sha");
    group.sample_size(10);
    group.bench_function("defuse", |bencher| {
        bencher.iter(|| {
            for f in &program.functions {
                std::hint::black_box(bec_ir::DefUse::compute(f, &program));
            }
        })
    });
    group.bench_function("liveness", |bencher| {
        bencher.iter(|| {
            for f in &program.functions {
                std::hint::black_box(bec_ir::Liveness::compute(f, &program));
            }
        })
    });
    group.bench_function("full", |bencher| {
        bencher.iter(|| BecAnalysis::analyze(&program, &BecOptions::paper()))
    });
    group.finish();
}

criterion_group!(benches, bench_analysis, bench_phases);
criterion_main!(benches);
