//! Diagnostic: prints the fault-site classes whose members produce
//! different traces (development tool for the validation suite).

use bec_core::{BecAnalysis, BecOptions};
use bec_ir::{PointLayout, Reg};
use bec_sim::campaign::occurrence_map;
use bec_sim::{FaultSpec, Simulator};
use std::collections::HashMap;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "rsa".to_owned());
    let b = bec_suite::tiny()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("no tiny benchmark {name}"));
    let program = b.compile().expect("compiles");
    let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
    let sim = Simulator::new(&program);
    let golden = sim.run_golden();
    let occs = occurrence_map(&golden);

    let mut shown = 0;
    for (fi, fa) in bec.functions().iter().enumerate() {
        let func = &program.functions[fi];
        let layout = PointLayout::of(func);
        let s0 = fa.coalescing.s0_class();
        // Group value-live site bits by class.
        let mut classes: HashMap<usize, Vec<(bec_ir::PointId, Reg, u32)>> = HashMap::new();
        for (p, r) in fa.coalescing.nodes().site_pairs() {
            if !fa.liveness.is_live_after(p, r) {
                continue;
            }
            for bit in 0..program.config.xlen {
                let c = fa.coalescing.class_of(p, r, bit).unwrap();
                if c != s0 {
                    classes.entry(c).or_default().push((p, r, bit));
                }
            }
        }
        for (c, members) in classes {
            if members.len() < 2 {
                continue;
            }
            // Compare occurrence 0 of every member.
            let mut digests = Vec::new();
            for &(p, r, bit) in &members {
                let Some(cycles) = occs.get(&(fi, p)) else { continue };
                let Some(&cy) = cycles.first() else { continue };
                let run = sim.run_with_fault(FaultSpec { cycle: cy + 1, reg: r, bit });
                digests.push((p, r, bit, run.hash.digest()));
            }
            if digests.len() >= 2 && digests.iter().any(|d| d.3 != digests[0].3) {
                println!("== function @{} class c{c} DISAGREES ==", fa.name);
                for (p, r, bit, d) in &digests {
                    let pi = layout.resolve(func, *p);
                    let desc = match (pi.as_inst(), pi.as_term()) {
                        (Some(i), _) => i.to_string(),
                        (_, Some(t)) => format!("{t:?}"),
                        _ => unreachable!(),
                    };
                    println!("   {p}:{desc:<28} {r}^{bit}  trace {d:032x}");
                }
                shown += 1;
                if shown >= 6 {
                    return;
                }
            }
        }
    }
    println!("({shown} disagreeing classes shown)");
}
