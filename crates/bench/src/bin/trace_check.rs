//! CI validator for Chrome-trace exports: parses a `--trace-out` file,
//! checks the trace header and the shape of every event, and asserts that
//! the expected span names are present.
//!
//! ```text
//! cargo run -p bec-bench --release --bin trace_check -- TRACE.json \
//!     --expect golden,campaign,shard
//! ```
//!
//! Exits non-zero with a diagnostic on stderr when the file does not
//! parse, the header is malformed, a complete event lacks a required
//! field, or an expected span never occurs — the CI telemetry-smoke gate.

use bec_sim::json::Json;
use std::collections::BTreeSet;

fn fail(msg: String) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut path: Option<String> = None;
    let mut expect: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--expect" => {
                let list = args
                    .next()
                    .unwrap_or_else(|| fail("--expect needs a comma-separated list".into()));
                expect
                    .extend(list.split(',').map(|s| s.trim().to_owned()).filter(|s| !s.is_empty()));
            }
            other if path.is_none() => path = Some(other.to_owned()),
            other => fail(format!("unexpected argument `{other}`")),
        }
    }
    let path =
        path.unwrap_or_else(|| fail("usage: trace_check TRACE.json [--expect a,b,c]".into()));

    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")));
    let doc = Json::parse(&text).unwrap_or_else(|e| fail(format!("{path} is not valid JSON: {e}")));
    if doc.get("displayTimeUnit").and_then(Json::as_str) != Some("ms") {
        fail(format!("{path}: missing `\"displayTimeUnit\":\"ms\"` trace header"));
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| fail(format!("{path}: missing `traceEvents` array")));

    let mut spans: BTreeSet<&str> = BTreeSet::new();
    let mut complete = 0usize;
    for event in events {
        let name = event
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(format!("{path}: event without a name: {}", event.render())));
        match event.get("ph").and_then(Json::as_str) {
            // Complete events carry the span timings.
            Some("X") => {
                for field in ["ts", "dur", "pid", "tid"] {
                    if event.get(field).and_then(Json::as_u64).is_none() {
                        fail(format!("{path}: span `{name}` lacks `{field}`"));
                    }
                }
                complete += 1;
                spans.insert(name);
            }
            // Metadata events label the worker timelines.
            Some("M") => {}
            other => fail(format!("{path}: span `{name}` has unexpected phase {other:?}")),
        }
    }
    if complete == 0 {
        fail(format!("{path}: trace holds no complete (`ph:\"X\"`) events"));
    }
    for want in &expect {
        if !spans.contains(want.as_str()) {
            fail(format!("{path}: expected span `{want}` never occurs (saw {spans:?})"));
        }
    }
    println!(
        "{path}: OK — {} events, {} complete spans, names {:?}",
        events.len(),
        complete,
        spans
    );
}
