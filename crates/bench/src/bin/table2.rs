//! Regenerates Table II: empirical validation of the analysis (sound and
//! precise / sound but imprecise / unsound — §V).
//!
//! Every value-live fault site of each program is injected at every dynamic
//! occurrence; runs grouped by equivalence class must produce identical
//! traces. Unsound counts must be zero.
//!
//! ```text
//! cargo run -p bec-bench --release --bin table2
//! ```

use bec_core::report::format_table;
use bec_core::BecOptions;
use bec_sim::validate_program;

fn main() {
    let mut rows = Vec::new();
    let mut programs: Vec<(String, bec_ir::Program)> =
        vec![("motivating".into(), bec_bench::motivating_example())];
    for b in bec_suite::tiny() {
        programs.push((format!("{} (tiny)", b.name), b.compile().expect("compiles")));
    }
    let mut total_unsound = 0;
    for (name, program) in &programs {
        let r = validate_program(program, &BecOptions::paper());
        total_unsound += r.unsound + r.masked_violations;
        rows.push(vec![
            name.clone(),
            r.runs.to_string(),
            r.sound_precise.to_string(),
            r.masked_confirmed.to_string(),
            r.imprecise_pairs.to_string(),
            (r.unsound + r.masked_violations).to_string(),
        ]);
    }

    println!("TABLE II: CLASSIFICATION OF COMPARISONS (per-program validation)\n");
    let headers =
        ["Program", "FI runs", "Sound precise", "Masked confirmed", "Sound imprecise", "Unsound"];
    print!("{}", format_table(&headers, &rows));
    println!("\nTotal unsound classifications: {total_unsound} (paper and reproduction: 0)");
    assert_eq!(total_unsound, 0, "the analysis must be empirically sound");
}
