//! Regenerates Fig. 2: the motivating example — fault-site map, abstract
//! bit values, fault-injection counts (288 vs 225) and the fault surface
//! before/after rescheduling (681 vs 576).
//!
//! ```text
//! cargo run -p bec-bench --release --bin fig2
//! ```

use bec_core::{pruning, surface, BecAnalysis, BecOptions, ExecProfile};
use bec_ir::{PointLayout, Program, Reg, Terminator};
use bec_sim::Simulator;

fn profile(p: &Program) -> ExecProfile {
    let sim = Simulator::new(p);
    sim.run_golden().profile
}

fn report(title: &str, p: &Program) -> (u64, u64, u64) {
    let bec = BecAnalysis::analyze(p, &BecOptions::paper());
    let prof = profile(p);
    let pr = pruning::pruning_row(title, p, &bec, &prof);
    let sr = surface::surface_row(title, p, &bec, &prof);

    println!("=== {title} ===");
    let f = p.entry_function();
    let fa = bec.function_by_name("main").expect("main analyzed");
    let layout = PointLayout::of(f);
    println!("{:<24} {:>6} {:>6} {:>6} {:>6}", "point", "r0", "r1", "r2", "r3");
    for pt in layout.iter() {
        let pi = layout.resolve(f, pt);
        let text = match (pi.as_inst(), pi.as_term()) {
            (Some(i), _) => i.to_string(),
            (_, Some(Terminator::Branch { .. })) => "bnez …".to_owned(),
            (_, Some(Terminator::Ret { .. })) => "ret".to_owned(),
            (_, Some(t)) => format!("{t:?}"),
            _ => unreachable!(),
        };
        let mut cells = Vec::new();
        for r in 0..4 {
            let reg = Reg::phys(r);
            let accessed = fa.coalescing.nodes().site(pt, reg, 0).is_some();
            if accessed {
                cells.push(format!("{}", fa.values.value_after(pt, reg)));
            } else {
                cells.push(String::new());
            }
        }
        println!(
            "{:<24} {:>6} {:>6} {:>6} {:>6}",
            format!("{pt}: {text}"),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
    }
    println!();
    println!("value-level FI runs : {}", pr.live_values);
    println!("bit-level FI runs   : {}", pr.live_bits);
    println!("masked / inferrable : {} / {}", pr.masked, pr.inferrable);
    println!("runs pruned         : {:.1}%", pr.pruned_pct());
    println!("live fault sites    : {}", sr.live_sites);
    println!();
    (pr.live_values, pr.live_bits, sr.live_sites)
}

fn main() {
    let original = bec_bench::motivating_example();
    let rescheduled = bec_ir::parse_program(
        r#"
machine xlen=4 regs=4 zero=none
func @main(args=0, ret=none) {
entry:
    li r0, 0
    li r1, 7
    j loop
loop:
    andi r2, r1, 1
    seqz r2, r2
    andi r3, r1, 3
    snez r3, r3
    and  r2, r2, r3
    add  r0, r0, r2
    addi r1, r1, -1
    bnez r1, loop
exit:
    ret r0
}
"#,
    )
    .expect("parses");

    println!("FIG. 2: the motivating example (countYears, 4-bit machine)\n");
    let (v1, b1, s1) = report("Fig. 2a/2b: original schedule", &original);
    let (v2, b2, s2) = report("Fig. 2c/2d: rescheduled (Fig. 2c order)", &rescheduled);

    println!("=== summary ===");
    println!(
        "FI runs:      value-level {v1} → {v2} (unchanged), bit-level {b1} → {b2} (unchanged)"
    );
    println!(
        "fault surface: {s1} → {s2}  (reduction {:.1}%; paper: 681 → 576, 15.4%)",
        100.0 * (1.0 - s2 as f64 / s1 as f64)
    );
    assert_eq!((v1, b1, s1), (288, 225, 681));
    assert_eq!((v2, b2, s2), (288, 225, 576));
}
