//! Worker-scaling measurement of the sharded campaign engine — the
//! acceptance experiment for "multi-threaded run ≥2x faster than
//! single-threaded at identical report bytes".
//!
//! Runs the exhaustive differential campaign on tiny suite workloads at
//! 1, 2, 4 and 8 workers, checks every report against the single-worker
//! bytes, and prints wall time plus speedup per worker count.
//!
//! ```text
//! cargo run -p bec-bench --release --bin campaign_scaling
//! ```

use bec_core::report::{format_table, group_digits};
use bec_core::{BecAnalysis, BecOptions};
use bec_sim::shard::{site_fault_space, CampaignSpec, ShardPlan};
use bec_sim::{pool, Simulator};

fn main() {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("campaign worker scaling ({cores} cores available)\n");

    let mut rows = Vec::new();
    for b in bec_suite::tiny() {
        let program = b.compile().expect("benchmark compiles");
        let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
        let sim = Simulator::new(&program);
        let golden = sim.run_golden();
        let plan = ShardPlan::build(
            site_fault_space(&program, &bec, &golden),
            CampaignSpec::exhaustive(64),
        );

        let mut baseline = None;
        let mut serial_wall = 0.0;
        for workers in [1usize, 2, 4, 8] {
            let (report, stats) =
                pool::run_sharded(&sim, &golden, &plan, workers, None, b.name).expect("pool runs");
            assert!(report.violations().is_empty(), "{}: soundness violation", b.name);
            let bytes = report.to_json().render();
            match &baseline {
                None => baseline = Some(bytes),
                Some(first) => assert_eq!(*first, bytes, "{}: report depends on workers", b.name),
            }
            let wall = stats.wall.as_secs_f64();
            if workers == 1 {
                serial_wall = wall;
            }
            rows.push(vec![
                b.name.to_owned(),
                group_digits(report.runs()),
                workers.to_string(),
                format!("{:.1} ms", wall * 1e3),
                format!("{:.2}x", serial_wall / wall),
            ]);
        }
    }

    print!("{}", format_table(&["Benchmark", "FI runs", "Workers", "Wall", "Speedup"], &rows));
    println!(
        "\nall reports byte-identical across worker counts; speedup is vs 1 worker\n(expect ≥2x at 4 workers on an idle ≥4-core host)"
    );
}
