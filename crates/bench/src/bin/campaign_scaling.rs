//! Scaling measurements of the sharded campaign engine: worker scaling and
//! the from-scratch vs checkpointed vs bitsliced engine comparison.
//!
//! Runs the differential campaign on tiny suite workloads, asserts every
//! report is byte-identical to the single-worker from-scratch scalar bytes
//! (worker count, checkpoint interval, engine and early-exit never leak
//! into the report), and prints wall time, runs/sec and speedups.
//!
//! ```text
//! cargo run -p bec-bench --release --bin campaign_scaling -- \
//!     [--json BENCH_campaign.json] [--assert-crc32-speedup 3] \
//!     [--assert-crc32-bitsliced-speedup 10] \
//!     [--assert-warm-cache-speedup 3]
//! ```
//!
//! `--json` writes a machine-readable baseline in the
//! [`bec_telemetry::MetricsSnapshot`] schema shared with `bec
//! --metrics-out`; `--assert-crc32-speedup X` exits non-zero unless the
//! checkpointed scalar engine beats the from-scratch engine by at least
//! `X`× on the exhaustive crc32 campaign, and
//! `--assert-crc32-bitsliced-speedup X` does the same for the bitsliced
//! engine against the from-scratch scalar engine (the CI perf-smoke
//! gates).
//!
//! Two distribution measurements ride along: every workload's campaign
//! prepare phase (full BEC analysis + aligned golden recording) is timed
//! cold against an empty `--cache-dir` artifact store and warm against the
//! entries the cold run wrote (`--assert-warm-cache-speedup X` gates the
//! crc32 ratio — the CI distributed-smoke gate), and when the `bec` CLI
//! binary is reachable ($BEC_BIN or a sibling of this executable) the
//! crc32 campaign is re-run at `--spawn` 1/2/4 worker processes with the
//! merged reports asserted byte-identical.

use bec::artifacts::ArtifactStore;
use bec_core::report::{format_table, group_digits};
use bec_core::{BecAnalysis, BecOptions};
use bec_sim::shard::{site_fault_space, CampaignSpec, ShardPlan};
use bec_sim::{
    default_checkpoint_interval, pool, CheckpointLog, Engine, SimLimits, Simulator, SiteVerdicts,
};
use bec_telemetry::Telemetry;
use std::path::PathBuf;
use std::time::Instant;

struct EngineRow {
    name: &'static str,
    runs: u64,
    interval: u64,
    scratch_ms: f64,
    checkpointed_ms: f64,
    bitsliced_ms: f64,
    cold_prepare_ms: f64,
    warm_prepare_ms: f64,
    early_exits: u64,
    batches: u64,
    batched_lanes: u64,
    forked_lanes: u64,
}

impl EngineRow {
    /// Checkpointed scalar vs from-scratch scalar.
    fn ckpt_speedup(&self) -> f64 {
        self.scratch_ms / self.checkpointed_ms
    }
    /// Bitsliced vs from-scratch scalar — the headline engine gain.
    fn bitsliced_speedup(&self) -> f64 {
        self.scratch_ms / self.bitsliced_ms
    }
    /// Warm artifact-store prepare vs cold — the `--cache-dir` gain.
    fn warm_cache_speedup(&self) -> f64 {
        self.cold_prepare_ms / self.warm_prepare_ms
    }
    /// Mean faults per 64-lane batch (64 = perfectly packed).
    fn lane_occupancy(&self) -> f64 {
        self.batched_lanes as f64 / self.batches.max(1) as f64
    }
    /// Fraction of lanes that diverged and fell back to a scalar tail.
    fn fork_rate(&self) -> f64 {
        self.forked_lanes as f64 / self.batched_lanes.max(1) as f64
    }
}

/// The `bec` CLI binary for the spawn-scaling rows: `$BEC_BIN` when set,
/// otherwise the sibling of this bench executable in the shared target
/// directory (present after `cargo build --release` of the facade crate).
fn bec_binary() -> Option<PathBuf> {
    if let Ok(p) = std::env::var("BEC_BIN") {
        let p = PathBuf::from(p);
        return p.is_file().then_some(p);
    }
    let exe = std::env::current_exe().ok()?;
    let sibling = exe.parent()?.join(if cfg!(windows) { "bec.exe" } else { "bec" });
    sibling.is_file().then_some(sibling)
}

fn main() {
    let mut json_path = None;
    let mut min_crc32_speedup = None;
    let mut min_crc32_bitsliced = None;
    let mut min_warm_cache = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--assert-crc32-speedup" => {
                let v = args.next().expect("--assert-crc32-speedup needs a value");
                min_crc32_speedup = Some(v.parse::<f64>().expect("numeric speedup"));
            }
            "--assert-crc32-bitsliced-speedup" => {
                let v = args.next().expect("--assert-crc32-bitsliced-speedup needs a value");
                min_crc32_bitsliced = Some(v.parse::<f64>().expect("numeric speedup"));
            }
            "--assert-warm-cache-speedup" => {
                let v = args.next().expect("--assert-warm-cache-speedup needs a value");
                min_warm_cache = Some(v.parse::<f64>().expect("numeric speedup"));
            }
            other => panic!("unknown flag `{other}`"),
        }
    }
    // Scratch artifact stores for the cold/warm prepare rows, one subtree
    // per benchmark, removed wholesale at exit.
    let cache_root =
        std::env::temp_dir().join(format!("bec-campaign-scaling-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_root);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("campaign scaling ({cores} cores available)\n");

    let mut worker_rows = Vec::new();
    let mut engine_rows = Vec::new();
    // The Table I tiny workloads, with crc32 at a 32-byte message: the
    // 8-byte tiny variant's 92-cycle trace is all per-run fixed cost, which
    // measures the harness rather than the engine.
    let workloads = vec![
        (bec_suite::bitcount::scaled(2), CampaignSpec::exhaustive(64)),
        (bec_suite::crc32::scaled(8), CampaignSpec::exhaustive(64)),
        (bec_suite::rsa::scaled(3233, 65, 7), CampaignSpec::exhaustive(64)),
        // aes's exhaustive space is ~910k sites — far past a smoke run. A
        // seeded sample keeps the wall time bounded while still exercising
        // the bitsliced engine on its 12.6k-cycle golden trace.
        (bec_suite::aes::benchmark(), CampaignSpec::sampled(0, 10_000, 64)),
    ];
    for (b, campaign_spec) in workloads {
        let program = b.compile().expect("benchmark compiles");
        let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
        let probe = Simulator::new(&program);
        let golden = probe.run_golden();
        // Same per-run budget policy as the differential suite: twice the
        // golden length classifies every non-converging run quickly.
        let budget = golden.cycles() * 2 + 100;
        let sim = Simulator::with_limits(&program, SimLimits { max_cycles: budget });
        let interval = default_checkpoint_interval(golden.cycles());
        let (golden, ckpts) = sim.run_golden_checkpointed(interval);
        let plan = ShardPlan::build(site_fault_space(&program, &bec, &golden), campaign_spec);

        // Engine comparison at one worker: from-scratch scalar vs
        // checkpointed scalar vs bitsliced. Each run carries its own
        // telemetry registry; the logical numbers (early exits, lane
        // counters) are read back from the snapshot rather than from
        // ad-hoc stats fields, so the baseline and `--metrics-out` agree
        // by construction.
        let time_engine = |log: &CheckpointLog, engine: Engine| {
            let tel = Telemetry::enabled();
            let started = Instant::now();
            let (report, _stats) =
                pool::run_sharded_engine(&sim, &golden, log, &plan, 1, None, b.name, engine, &tel)
                    .expect("pool runs");
            assert!(report.violations().is_empty(), "{}: soundness violation", b.name);
            (started.elapsed().as_secs_f64(), report.to_json().render(), tel.snapshot())
        };
        let (scratch_wall, baseline, _) = time_engine(&CheckpointLog::disabled(), Engine::Scalar);
        let (ck_wall, ck_bytes, ck_snap) = time_engine(&ckpts, Engine::Scalar);
        let (bs_wall, bs_bytes, bs_snap) = time_engine(&ckpts, Engine::Bitsliced);
        assert_eq!(baseline, ck_bytes, "{}: engines disagree on report bytes", b.name);
        assert_eq!(baseline, bs_bytes, "{}: bitsliced report bytes deviate", b.name);
        let early_exits = ck_snap.counter("campaign.early_exits").unwrap_or(0);
        // Early exits count individual faults on both engines, so the
        // numbers must agree exactly.
        assert_eq!(
            bs_snap.counter("campaign.early_exits").unwrap_or(0),
            early_exits,
            "{}: early-exit counts disagree across engines",
            b.name
        );
        // Artifact-cache prepare phase: the exact work a warm `--cache-dir`
        // campaign skips — the full BEC analysis (as campaign verdicts) and
        // the aligned golden recording — timed cold against an empty store,
        // then warm against the two entries the cold pass just wrote.
        let cache_dir = cache_root.join(b.name);
        let text = bec_ir::print_program(&program);
        let prepare = |tel: &Telemetry| {
            let store = ArtifactStore::open(cache_dir.to_str().expect("utf-8 cache path"))
                .expect("artifact store opens");
            let started = Instant::now();
            let _verdicts = store.verdicts_or("paper", text.as_bytes(), tel, || {
                SiteVerdicts::of(&program, &BecAnalysis::analyze(&program, &BecOptions::paper()))
            });
            let (aligned, _ckpts) =
                store.golden_or(text.as_bytes(), budget, tel, || sim.run_golden_aligned());
            (started.elapsed().as_secs_f64(), aligned.cycles())
        };
        let (cold_prepare, cold_cycles) = prepare(&Telemetry::enabled());
        // Warm timing is min-of-3: a single sub-millisecond load is at the
        // mercy of one stray page fault, and the gate divides by it.
        let mut warm_prepare = f64::INFINITY;
        for _ in 0..3 {
            let warm_tel = Telemetry::enabled();
            let (wall, warm_cycles) = prepare(&warm_tel);
            assert_eq!(cold_cycles, warm_cycles, "{}: cached golden deviates", b.name);
            let warm_snap = warm_tel.snapshot();
            assert_eq!(
                warm_snap.counter("cache.hits").unwrap_or(0),
                2,
                "{}: warm prepare must hit both artifacts",
                b.name
            );
            assert_eq!(warm_snap.counter("cache.misses").unwrap_or(0), 0);
            warm_prepare = warm_prepare.min(wall);
        }

        engine_rows.push(EngineRow {
            name: b.name,
            runs: plan.runs() as u64,
            interval,
            scratch_ms: scratch_wall * 1e3,
            checkpointed_ms: ck_wall * 1e3,
            bitsliced_ms: bs_wall * 1e3,
            cold_prepare_ms: cold_prepare * 1e3,
            warm_prepare_ms: warm_prepare * 1e3,
            early_exits,
            batches: bs_snap.counter("campaign.batches").unwrap_or(0),
            batched_lanes: bs_snap.counter("campaign.batched_lanes").unwrap_or(0),
            forked_lanes: bs_snap.counter("campaign.forked_lanes").unwrap_or(0),
        });

        // Worker scaling of the default (bitsliced, checkpointed) engine.
        let mut serial_wall = 0.0;
        for workers in [1usize, 2, 4, 8] {
            let (report, stats) =
                pool::run_sharded(&sim, &golden, &ckpts, &plan, workers, None, b.name)
                    .expect("pool runs");
            assert_eq!(
                report.to_json().render(),
                baseline,
                "{}: report depends on workers",
                b.name
            );
            let wall = stats.wall.as_secs_f64();
            if workers == 1 {
                serial_wall = wall;
            }
            worker_rows.push(vec![
                b.name.to_owned(),
                group_digits(report.runs()),
                workers.to_string(),
                format!("{:.1} ms", wall * 1e3),
                format!("{:.2}x", serial_wall / wall),
            ]);
        }
    }

    // Process spawn scaling through the real CLI: the same sampled crc32
    // campaign at 1/2/4 worker processes, merged reports byte-compared.
    // Purely informational (process spawn has fixed costs a smoke-sized
    // workload cannot amortize); skipped when the binary is unreachable.
    let mut spawn_rows = Vec::new();
    let mut spawn_walls: Vec<(usize, f64)> = Vec::new();
    match bec_binary() {
        None => println!(
            "spawn scaling skipped: `bec` binary not found (set BEC_BIN or build the facade crate)\n"
        ),
        Some(bin) => {
            let file = concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/bench_crc32.s");
            let dir = cache_root.join("spawn");
            std::fs::create_dir_all(&dir).expect("spawn scratch dir");
            let mut baseline: Option<Vec<u8>> = None;
            let mut serial = 0.0;
            for n in [1usize, 2, 4] {
                let report = dir.join(format!("spawn-{n}.json"));
                let started = Instant::now();
                let out = std::process::Command::new(&bin)
                    .args([
                        "campaign",
                        file,
                        "--sample",
                        "512",
                        "--shards",
                        "16",
                        "--spawn",
                        &n.to_string(),
                        "--report",
                        report.to_str().expect("utf-8 report path"),
                    ])
                    .output()
                    .expect("bec campaign runs");
                assert!(
                    out.status.success(),
                    "bec campaign --spawn {n} failed:\n{}",
                    String::from_utf8_lossy(&out.stderr)
                );
                let wall = started.elapsed().as_secs_f64();
                if n == 1 {
                    serial = wall;
                }
                let bytes = std::fs::read(&report).expect("report written");
                match &baseline {
                    None => baseline = Some(bytes),
                    Some(b) => assert_eq!(&bytes, b, "report depends on --spawn"),
                }
                spawn_rows.push(vec![
                    "bench_crc32".to_owned(),
                    n.to_string(),
                    format!("{:.1} ms", wall * 1e3),
                    format!("{:.2}x", serial / wall),
                ]);
                spawn_walls.push((n, wall));
            }
        }
    }

    print!(
        "{}",
        format_table(&["Benchmark", "FI runs", "Workers", "Wall", "Speedup"], &worker_rows)
    );
    println!("\nengine comparison (1 worker):\n");
    print!(
        "{}",
        format_table(
            &[
                "Benchmark",
                "FI runs",
                "Interval",
                "From-scratch",
                "Checkpointed",
                "Bitsliced",
                "Early exits",
                "Ckpt speedup",
                "Lane speedup",
                "Occupancy",
                "Fork rate"
            ],
            &engine_rows
                .iter()
                .map(|r| vec![
                    r.name.to_owned(),
                    group_digits(r.runs),
                    r.interval.to_string(),
                    format!("{:.1} ms", r.scratch_ms),
                    format!("{:.1} ms", r.checkpointed_ms),
                    format!("{:.1} ms", r.bitsliced_ms),
                    group_digits(r.early_exits),
                    format!("{:.2}x", r.ckpt_speedup()),
                    format!("{:.2}x", r.bitsliced_speedup()),
                    format!("{:.1}/64", r.lane_occupancy()),
                    format!("{:.1} %", r.fork_rate() * 1e2),
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!("\nartifact cache (campaign prepare phase, cold store vs warm store):\n");
    print!(
        "{}",
        format_table(
            &["Benchmark", "Cold prepare", "Warm prepare", "Speedup"],
            &engine_rows
                .iter()
                .map(|r| vec![
                    r.name.to_owned(),
                    format!("{:.2} ms", r.cold_prepare_ms),
                    format!("{:.2} ms", r.warm_prepare_ms),
                    format!("{:.2}x", r.warm_cache_speedup()),
                ])
                .collect::<Vec<_>>(),
        )
    );
    if !spawn_rows.is_empty() {
        println!("\nprocess spawn scaling (bench_crc32.s, seeded sample of 512):\n");
        print!("{}", format_table(&["Benchmark", "Spawn", "Wall", "Speedup"], &spawn_rows));
    }
    println!(
        "\nall reports byte-identical across engines and worker counts\n(expect ≥2x at 4 workers, ≥3x checkpointed-vs-scratch and ≥10x\nbitsliced-vs-scratch on an idle host)"
    );

    if let Some(path) = json_path {
        // The baseline is a MetricsSnapshot — the `--metrics-out` schema —
        // with one `campaign_scaling.<benchmark>.*` family per workload.
        // Timings are `time_ms` metrics (nondeterministic by nature; this
        // baseline is informational, not byte-gated).
        let base = Telemetry::enabled();
        for r in &engine_rows {
            let prefix = format!("campaign_scaling.{}", r.name);
            let rps = |ms: f64| (r.runs as f64 / (ms / 1e3)) as u64;
            base.gauge(&format!("{prefix}.runs"), r.runs);
            base.gauge(&format!("{prefix}.checkpoint_interval"), r.interval);
            base.gauge(&format!("{prefix}.early_exits"), r.early_exits);
            base.gauge(&format!("{prefix}.from_scratch_runs_per_sec"), rps(r.scratch_ms));
            base.gauge(&format!("{prefix}.checkpointed_runs_per_sec"), rps(r.checkpointed_ms));
            base.gauge(&format!("{prefix}.bitsliced_runs_per_sec"), rps(r.bitsliced_ms));
            base.gauge(&format!("{prefix}.batches"), r.batches);
            base.gauge(&format!("{prefix}.batched_lanes"), r.batched_lanes);
            base.gauge(&format!("{prefix}.forked_lanes"), r.forked_lanes);
            base.time_ms(&format!("{prefix}.from_scratch_wall_ms"), r.scratch_ms);
            base.time_ms(&format!("{prefix}.checkpointed_wall_ms"), r.checkpointed_ms);
            base.time_ms(&format!("{prefix}.bitsliced_wall_ms"), r.bitsliced_ms);
            base.time_ms(&format!("{prefix}.cold_prepare_wall_ms"), r.cold_prepare_ms);
            base.time_ms(&format!("{prefix}.warm_prepare_wall_ms"), r.warm_prepare_ms);
        }
        // CLI spawn rows use the example-file name so they cannot shadow
        // the suite crc32 family above.
        for (n, wall) in &spawn_walls {
            base.time_ms(&format!("campaign_scaling.bench_crc32.spawn{n}_wall_ms"), wall * 1e3);
        }
        base.write_metrics(&path).expect("baseline written");
        println!("\nwrote {path}");
    }

    let crc32_row = || engine_rows.iter().find(|r| r.name == "crc32").expect("crc32 in tiny suite");
    if let Some(min) = min_crc32_speedup {
        let crc = crc32_row();
        assert!(
            crc.ckpt_speedup() >= min,
            "checkpointed crc32 campaign only {:.2}x faster than from-scratch (need ≥{min}x)",
            crc.ckpt_speedup()
        );
        println!("crc32 speedup gate passed: {:.2}x ≥ {min}x", crc.ckpt_speedup());
    }
    if let Some(min) = min_crc32_bitsliced {
        let crc = crc32_row();
        assert!(
            crc.bitsliced_speedup() >= min,
            "bitsliced crc32 campaign only {:.2}x faster than from-scratch scalar (need ≥{min}x)",
            crc.bitsliced_speedup()
        );
        println!("crc32 bitsliced speedup gate passed: {:.2}x ≥ {min}x", crc.bitsliced_speedup());
    }
    if let Some(min) = min_warm_cache {
        let crc = crc32_row();
        assert!(
            crc.warm_cache_speedup() >= min,
            "warm crc32 prepare only {:.2}x faster than cold (need ≥{min}x)",
            crc.warm_cache_speedup()
        );
        println!("crc32 warm-cache speedup gate passed: {:.2}x ≥ {min}x", crc.warm_cache_speedup());
    }
    let _ = std::fs::remove_dir_all(&cache_root);
}
