//! Scaling measurements of the sharded campaign engine: worker scaling and
//! the from-scratch vs checkpointed vs bitsliced engine comparison.
//!
//! Runs the differential campaign on tiny suite workloads, asserts every
//! report is byte-identical to the single-worker from-scratch scalar bytes
//! (worker count, checkpoint interval, engine and early-exit never leak
//! into the report), and prints wall time, runs/sec and speedups.
//!
//! ```text
//! cargo run -p bec-bench --release --bin campaign_scaling -- \
//!     [--json BENCH_campaign.json] [--assert-crc32-speedup 3] \
//!     [--assert-crc32-bitsliced-speedup 10]
//! ```
//!
//! `--json` writes a machine-readable baseline in the
//! [`bec_telemetry::MetricsSnapshot`] schema shared with `bec
//! --metrics-out`; `--assert-crc32-speedup X` exits non-zero unless the
//! checkpointed scalar engine beats the from-scratch engine by at least
//! `X`× on the exhaustive crc32 campaign, and
//! `--assert-crc32-bitsliced-speedup X` does the same for the bitsliced
//! engine against the from-scratch scalar engine (the CI perf-smoke
//! gates).

use bec_core::report::{format_table, group_digits};
use bec_core::{BecAnalysis, BecOptions};
use bec_sim::shard::{site_fault_space, CampaignSpec, ShardPlan};
use bec_sim::{default_checkpoint_interval, pool, CheckpointLog, Engine, SimLimits, Simulator};
use bec_telemetry::Telemetry;
use std::time::Instant;

struct EngineRow {
    name: &'static str,
    runs: u64,
    interval: u64,
    scratch_ms: f64,
    checkpointed_ms: f64,
    bitsliced_ms: f64,
    early_exits: u64,
    batches: u64,
    batched_lanes: u64,
    forked_lanes: u64,
}

impl EngineRow {
    /// Checkpointed scalar vs from-scratch scalar.
    fn ckpt_speedup(&self) -> f64 {
        self.scratch_ms / self.checkpointed_ms
    }
    /// Bitsliced vs from-scratch scalar — the headline engine gain.
    fn bitsliced_speedup(&self) -> f64 {
        self.scratch_ms / self.bitsliced_ms
    }
    /// Mean faults per 64-lane batch (64 = perfectly packed).
    fn lane_occupancy(&self) -> f64 {
        self.batched_lanes as f64 / self.batches.max(1) as f64
    }
    /// Fraction of lanes that diverged and fell back to a scalar tail.
    fn fork_rate(&self) -> f64 {
        self.forked_lanes as f64 / self.batched_lanes.max(1) as f64
    }
}

fn main() {
    let mut json_path = None;
    let mut min_crc32_speedup = None;
    let mut min_crc32_bitsliced = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--assert-crc32-speedup" => {
                let v = args.next().expect("--assert-crc32-speedup needs a value");
                min_crc32_speedup = Some(v.parse::<f64>().expect("numeric speedup"));
            }
            "--assert-crc32-bitsliced-speedup" => {
                let v = args.next().expect("--assert-crc32-bitsliced-speedup needs a value");
                min_crc32_bitsliced = Some(v.parse::<f64>().expect("numeric speedup"));
            }
            other => panic!("unknown flag `{other}`"),
        }
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("campaign scaling ({cores} cores available)\n");

    let mut worker_rows = Vec::new();
    let mut engine_rows = Vec::new();
    // The Table I tiny workloads, with crc32 at a 32-byte message: the
    // 8-byte tiny variant's 92-cycle trace is all per-run fixed cost, which
    // measures the harness rather than the engine.
    let workloads = vec![
        (bec_suite::bitcount::scaled(2), CampaignSpec::exhaustive(64)),
        (bec_suite::crc32::scaled(8), CampaignSpec::exhaustive(64)),
        (bec_suite::rsa::scaled(3233, 65, 7), CampaignSpec::exhaustive(64)),
        // aes's exhaustive space is ~910k sites — far past a smoke run. A
        // seeded sample keeps the wall time bounded while still exercising
        // the bitsliced engine on its 12.6k-cycle golden trace.
        (bec_suite::aes::benchmark(), CampaignSpec::sampled(0, 10_000, 64)),
    ];
    for (b, campaign_spec) in workloads {
        let program = b.compile().expect("benchmark compiles");
        let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
        let probe = Simulator::new(&program);
        let golden = probe.run_golden();
        // Same per-run budget policy as the differential suite: twice the
        // golden length classifies every non-converging run quickly.
        let budget = golden.cycles() * 2 + 100;
        let sim = Simulator::with_limits(&program, SimLimits { max_cycles: budget });
        let interval = default_checkpoint_interval(golden.cycles());
        let (golden, ckpts) = sim.run_golden_checkpointed(interval);
        let plan = ShardPlan::build(site_fault_space(&program, &bec, &golden), campaign_spec);

        // Engine comparison at one worker: from-scratch scalar vs
        // checkpointed scalar vs bitsliced. Each run carries its own
        // telemetry registry; the logical numbers (early exits, lane
        // counters) are read back from the snapshot rather than from
        // ad-hoc stats fields, so the baseline and `--metrics-out` agree
        // by construction.
        let time_engine = |log: &CheckpointLog, engine: Engine| {
            let tel = Telemetry::enabled();
            let started = Instant::now();
            let (report, _stats) =
                pool::run_sharded_engine(&sim, &golden, log, &plan, 1, None, b.name, engine, &tel)
                    .expect("pool runs");
            assert!(report.violations().is_empty(), "{}: soundness violation", b.name);
            (started.elapsed().as_secs_f64(), report.to_json().render(), tel.snapshot())
        };
        let (scratch_wall, baseline, _) = time_engine(&CheckpointLog::disabled(), Engine::Scalar);
        let (ck_wall, ck_bytes, ck_snap) = time_engine(&ckpts, Engine::Scalar);
        let (bs_wall, bs_bytes, bs_snap) = time_engine(&ckpts, Engine::Bitsliced);
        assert_eq!(baseline, ck_bytes, "{}: engines disagree on report bytes", b.name);
        assert_eq!(baseline, bs_bytes, "{}: bitsliced report bytes deviate", b.name);
        let early_exits = ck_snap.counter("campaign.early_exits").unwrap_or(0);
        // Early exits count individual faults on both engines, so the
        // numbers must agree exactly.
        assert_eq!(
            bs_snap.counter("campaign.early_exits").unwrap_or(0),
            early_exits,
            "{}: early-exit counts disagree across engines",
            b.name
        );
        engine_rows.push(EngineRow {
            name: b.name,
            runs: plan.runs() as u64,
            interval,
            scratch_ms: scratch_wall * 1e3,
            checkpointed_ms: ck_wall * 1e3,
            bitsliced_ms: bs_wall * 1e3,
            early_exits,
            batches: bs_snap.counter("campaign.batches").unwrap_or(0),
            batched_lanes: bs_snap.counter("campaign.batched_lanes").unwrap_or(0),
            forked_lanes: bs_snap.counter("campaign.forked_lanes").unwrap_or(0),
        });

        // Worker scaling of the default (bitsliced, checkpointed) engine.
        let mut serial_wall = 0.0;
        for workers in [1usize, 2, 4, 8] {
            let (report, stats) =
                pool::run_sharded(&sim, &golden, &ckpts, &plan, workers, None, b.name)
                    .expect("pool runs");
            assert_eq!(
                report.to_json().render(),
                baseline,
                "{}: report depends on workers",
                b.name
            );
            let wall = stats.wall.as_secs_f64();
            if workers == 1 {
                serial_wall = wall;
            }
            worker_rows.push(vec![
                b.name.to_owned(),
                group_digits(report.runs()),
                workers.to_string(),
                format!("{:.1} ms", wall * 1e3),
                format!("{:.2}x", serial_wall / wall),
            ]);
        }
    }

    print!(
        "{}",
        format_table(&["Benchmark", "FI runs", "Workers", "Wall", "Speedup"], &worker_rows)
    );
    println!("\nengine comparison (1 worker):\n");
    print!(
        "{}",
        format_table(
            &[
                "Benchmark",
                "FI runs",
                "Interval",
                "From-scratch",
                "Checkpointed",
                "Bitsliced",
                "Early exits",
                "Ckpt speedup",
                "Lane speedup",
                "Occupancy",
                "Fork rate"
            ],
            &engine_rows
                .iter()
                .map(|r| vec![
                    r.name.to_owned(),
                    group_digits(r.runs),
                    r.interval.to_string(),
                    format!("{:.1} ms", r.scratch_ms),
                    format!("{:.1} ms", r.checkpointed_ms),
                    format!("{:.1} ms", r.bitsliced_ms),
                    group_digits(r.early_exits),
                    format!("{:.2}x", r.ckpt_speedup()),
                    format!("{:.2}x", r.bitsliced_speedup()),
                    format!("{:.1}/64", r.lane_occupancy()),
                    format!("{:.1} %", r.fork_rate() * 1e2),
                ])
                .collect::<Vec<_>>(),
        )
    );
    println!(
        "\nall reports byte-identical across engines and worker counts\n(expect ≥2x at 4 workers, ≥3x checkpointed-vs-scratch and ≥10x\nbitsliced-vs-scratch on an idle host)"
    );

    if let Some(path) = json_path {
        // The baseline is a MetricsSnapshot — the `--metrics-out` schema —
        // with one `campaign_scaling.<benchmark>.*` family per workload.
        // Timings are `time_ms` metrics (nondeterministic by nature; this
        // baseline is informational, not byte-gated).
        let base = Telemetry::enabled();
        for r in &engine_rows {
            let prefix = format!("campaign_scaling.{}", r.name);
            let rps = |ms: f64| (r.runs as f64 / (ms / 1e3)) as u64;
            base.gauge(&format!("{prefix}.runs"), r.runs);
            base.gauge(&format!("{prefix}.checkpoint_interval"), r.interval);
            base.gauge(&format!("{prefix}.early_exits"), r.early_exits);
            base.gauge(&format!("{prefix}.from_scratch_runs_per_sec"), rps(r.scratch_ms));
            base.gauge(&format!("{prefix}.checkpointed_runs_per_sec"), rps(r.checkpointed_ms));
            base.gauge(&format!("{prefix}.bitsliced_runs_per_sec"), rps(r.bitsliced_ms));
            base.gauge(&format!("{prefix}.batches"), r.batches);
            base.gauge(&format!("{prefix}.batched_lanes"), r.batched_lanes);
            base.gauge(&format!("{prefix}.forked_lanes"), r.forked_lanes);
            base.time_ms(&format!("{prefix}.from_scratch_wall_ms"), r.scratch_ms);
            base.time_ms(&format!("{prefix}.checkpointed_wall_ms"), r.checkpointed_ms);
            base.time_ms(&format!("{prefix}.bitsliced_wall_ms"), r.bitsliced_ms);
        }
        base.write_metrics(&path).expect("baseline written");
        println!("\nwrote {path}");
    }

    let crc32_row = || engine_rows.iter().find(|r| r.name == "crc32").expect("crc32 in tiny suite");
    if let Some(min) = min_crc32_speedup {
        let crc = crc32_row();
        assert!(
            crc.ckpt_speedup() >= min,
            "checkpointed crc32 campaign only {:.2}x faster than from-scratch (need ≥{min}x)",
            crc.ckpt_speedup()
        );
        println!("crc32 speedup gate passed: {:.2}x ≥ {min}x", crc.ckpt_speedup());
    }
    if let Some(min) = min_crc32_bitsliced {
        let crc = crc32_row();
        assert!(
            crc.bitsliced_speedup() >= min,
            "bitsliced crc32 campaign only {:.2}x faster than from-scratch scalar (need ≥{min}x)",
            crc.bitsliced_speedup()
        );
        println!("crc32 bitsliced speedup gate passed: {:.2}x ≥ {min}x", crc.bitsliced_speedup());
    }
}
