//! Scaling measurements of the dense analysis engine: seed-vs-dense
//! end-to-end `bec analyze` throughput over the full benchmark suite, plus
//! worker scaling of the parallel per-function orchestrator.
//!
//! The "seed" side is the retained reference solver
//! (`bec_core::reference`): the repository's original map-based pipeline —
//! hashed bit-value storage with a FIFO worklist, `BTreeSet` def–use
//! fixpoints, node-interning maps, interned-universe liveness bitsets. The
//! bin asserts per-site verdict parity
//! between the engines and worker-count independence of the dense verdict
//! table before trusting any timing.
//!
//! ```text
//! cargo run -p bec-bench --release --bin analysis_scaling -- \
//!     [--json BENCH_analysis.json] [--assert-speedup 3]
//! ```
//!
//! `--json` writes a machine-readable baseline in the
//! [`bec_telemetry::MetricsSnapshot`] schema shared with `bec
//! --metrics-out`; `--assert-speedup X` exits non-zero unless the dense
//! engine beats the reference by at least `X`× single-worker on the
//! largest suite benchmark (the CI perf-smoke gate).

use bec_core::report::{format_table, group_digits};
use bec_core::{reference, BecAnalysis, BecOptions, SiteVerdict};
use bec_ir::{PointId, Program, Reg};
use bec_telemetry::Telemetry;
use std::time::Instant;

struct Row {
    name: &'static str,
    points: u64,
    sites: u64,
    reference_ms: f64,
    dense_ms: f64,
    speedup: f64,
}

/// Best-of-N wall time of `run`, with N sized so the total measurement
/// takes roughly a quarter second per engine.
fn time_best(mut run: impl FnMut()) -> f64 {
    let started = Instant::now();
    run();
    let est = started.elapsed().as_secs_f64();
    let iters = ((0.25 / est.max(1e-6)) as usize).clamp(3, 200);
    let mut best = est;
    for _ in 0..iters {
        let t = Instant::now();
        run();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// The dense engine's full verdict table, for parity checks.
fn dense_verdicts(
    program: &Program,
    bec: &BecAnalysis,
) -> Vec<(usize, PointId, Reg, u32, SiteVerdict)> {
    let mut out = Vec::new();
    for (fi, fa) in bec.functions().iter().enumerate() {
        for (p, r) in fa.coalescing.nodes().site_pairs() {
            for bit in 0..program.config.xlen {
                out.push((fi, p, r, bit, bec.site_verdict(fi, p, r, bit).expect("site exists")));
            }
        }
    }
    out
}

fn main() {
    let mut json_path = None;
    let mut min_speedup = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--assert-speedup" => {
                let v = args.next().expect("--assert-speedup needs a value");
                min_speedup = Some(v.parse::<f64>().expect("numeric speedup"));
            }
            other => panic!("unknown flag `{other}`"),
        }
    }

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("analysis scaling ({cores} cores available)\n");
    let options = BecOptions::paper();

    let mut rows: Vec<Row> = Vec::new();
    let mut largest: Option<(&'static str, Program, u64)> = None;
    for b in bec_suite::all() {
        let program = b.compile().expect("benchmark compiles");

        // Correctness first: the engines must agree on every verdict. The
        // instrumented entry point feeds the shared metric registry, which
        // is where the baseline's solver counters are read back from.
        let tel = Telemetry::enabled();
        let dense = BecAnalysis::analyze_instrumented(&program, &options, 1, &tel);
        let seed = reference::analyze_program(&program, &options);
        let mut sites = 0u64;
        for (fi, fa) in dense.functions().iter().enumerate() {
            for (p, r) in fa.coalescing.nodes().site_pairs() {
                for bit in 0..program.config.xlen {
                    assert_eq!(
                        dense.site_verdict(fi, p, r, bit),
                        seed[fi].site_verdict(p, r, bit),
                        "{}: engines disagree at {}:({p}, {r}^{bit})",
                        b.name,
                        fa.name
                    );
                    sites += 1;
                }
            }
        }

        let reference_ms = time_best(|| {
            std::hint::black_box(reference::analyze_program(&program, &options));
        }) * 1e3;
        let dense_ms = time_best(|| {
            std::hint::black_box(BecAnalysis::analyze(&program, &options));
        }) * 1e3;

        let points = tel.snapshot().counter("analysis.points").expect("analysis.points recorded");
        rows.push(Row {
            name: b.name,
            points,
            sites,
            reference_ms,
            dense_ms,
            speedup: reference_ms / dense_ms,
        });
        if largest.as_ref().map(|(_, _, p)| points > *p).unwrap_or(true) {
            largest = Some((b.name, program, points));
        }
    }

    print!(
        "{}",
        format_table(
            &["Benchmark", "Points", "Site bits", "Reference", "Dense", "Speedup"],
            &rows
                .iter()
                .map(|r| vec![
                    r.name.to_owned(),
                    r.points.to_string(),
                    group_digits(r.sites),
                    format!("{:.2} ms", r.reference_ms),
                    format!("{:.2} ms", r.dense_ms),
                    format!("{:.2}x", r.speedup),
                ])
                .collect::<Vec<_>>(),
        )
    );

    // Worker scaling on the largest benchmark, with byte-identical verdicts.
    let (big_name, big_program, _) = largest.expect("suite is non-empty");
    let baseline = BecAnalysis::analyze_with_workers(&big_program, &options, 1);
    let base_table = dense_verdicts(&big_program, &baseline);
    let mut worker_rows = Vec::new();
    let mut serial = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let wall = time_best(|| {
            std::hint::black_box(BecAnalysis::analyze_with_workers(
                &big_program,
                &options,
                workers,
            ));
        }) * 1e3;
        let par = BecAnalysis::analyze_with_workers(&big_program, &options, workers);
        assert_eq!(
            dense_verdicts(&big_program, &par),
            base_table,
            "{big_name}: verdicts depend on workers"
        );
        if workers == 1 {
            serial = wall;
        }
        worker_rows.push(vec![
            big_name.to_owned(),
            workers.to_string(),
            format!("{wall:.2} ms"),
            format!("{:.2}x", serial / wall),
        ]);
    }
    println!("\nworker scaling on the largest benchmark ({big_name}):\n");
    print!("{}", format_table(&["Benchmark", "Workers", "Wall", "Speedup"], &worker_rows));
    println!(
        "\nverdict tables identical across engines and worker counts\n(expect ≥3x dense-vs-reference single-worker on an idle host; target 5x)"
    );

    if let Some(path) = json_path {
        // The baseline is a MetricsSnapshot — the `--metrics-out` schema —
        // with one `analysis_scaling.<benchmark>.*` family per benchmark.
        // Timings are `time_ms` metrics (informational, not byte-gated).
        let base = Telemetry::enabled();
        for r in &rows {
            let prefix = format!("analysis_scaling.{}", r.name);
            base.gauge(&format!("{prefix}.points"), r.points);
            base.gauge(&format!("{prefix}.site_bits"), r.sites);
            base.time_ms(&format!("{prefix}.reference_wall_ms"), r.reference_ms);
            base.time_ms(&format!("{prefix}.dense_wall_ms"), r.dense_ms);
        }
        base.write_metrics(&path).expect("baseline written");
        println!("\nwrote {path}");
    }

    if let Some(min) = min_speedup {
        let big = rows.iter().find(|r| r.name == big_name).expect("largest row");
        assert!(
            big.speedup >= min,
            "dense {big_name} analysis only {:.2}x faster than the reference (need ≥{min}x)",
            big.speedup
        );
        println!("{big_name} speedup gate passed: {:.2}x ≥ {min}x", big.speedup);
    }
}
