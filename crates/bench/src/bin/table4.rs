//! Regenerates Table IV: reliability change from bit-level
//! vulnerability-aware instruction scheduling.
//!
//! ```text
//! cargo run -p bec-bench --release --bin table4
//! ```

use bec_bench::scheduled_surfaces;
use bec_core::report::{format_table, group_digits};
use bec_core::BecOptions;
use bec_sched::Criterion;

fn main() {
    let benchmarks = bec_suite::all();
    let opts = BecOptions::paper();
    let mut rows = Vec::new();
    let mut improvements = Vec::new();
    for b in &benchmarks {
        // All criteria scored against one shared analysis.
        let surfaces = scheduled_surfaces(b, &opts);
        let row_of = |c: Criterion| {
            surfaces.iter().find(|(k, _)| *k == c).map(|(_, r)| r.clone()).expect("criterion row")
        };
        let best = row_of(Criterion::BestReliability);
        let worst = row_of(Criterion::WorstReliability);
        let ratio = 100.0 * worst.live_sites as f64 / best.live_sites.max(1) as f64;
        improvements.push(ratio - 100.0);
        rows.push(vec![
            b.name.to_owned(),
            group_digits(best.total_fault_space),
            group_digits(best.live_sites),
            group_digits(worst.live_sites),
            format!("{ratio:.2}%"),
            format!("+{:.2}%", ratio - 100.0),
        ]);
    }

    println!(
        "TABLE IV: CHANGES IN THE RELIABILITY AGAINST SOFT ERRORS FROM BIT-LEVEL\nVULNERABILITY-AWARE INSTRUCTION SCHEDULING\n"
    );
    let headers =
        ["", "Total fault space", "Best reliability", "Worst reliability", "Worst/Best", "+"];
    print!("{}", format_table(&headers, &rows));
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max = improvements.iter().cloned().fold(0.0, f64::max);
    println!(
        "\nAverage improvement headroom: {avg:.2}%   Max: {max:.2}%   (paper: 4.94% avg, 13.11% max)"
    );
}
