//! Regenerates Fig. 4: the fork-after-join coalescing walkthrough —
//! printing, per fault site, the final equivalence class structure.
//!
//! ```text
//! cargo run -p bec-bench --release --bin fig4
//! ```

use bec_core::{BecAnalysis, BecOptions};
use bec_ir::{parse_program, PointLayout};

fn main() {
    let program = parse_program(
        r#"
machine xlen=4 regs=8 zero=none
global data: byte[8]
func @main(args=0, ret=none) {
entry:
    lw   r6, 0(r7)
    bnez r6, def_a, def_b
def_a:
    lw   r2, 0(r7)      # a = ...
    j    join
def_b:
    lw   r2, 4(r7)      # b = ...
    j    join
join:
    andi r3, r2, 1      # m = andi v, 1
    beqz r3, even, odd
even:
    slli r4, r2, 3      # v8 = shl v, 3
    print r4
    exit
odd:
    slli r5, r2, 2      # v4 = shl v, 2
    print r5
    exit
}
"#,
    )
    .expect("fig4 example parses");

    let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
    let fa = bec.function_by_name("main").expect("analyzed");
    let f = program.function("main").expect("exists");
    let layout = PointLayout::of(f);

    println!("FIG. 4: iterative fault-index coalescing on a fork-after-join CFG\n");
    println!("Classes per fault site (bit 3 … bit 0; `s0` = masked):\n");
    let s0 = fa.coalescing.s0_class();
    for pt in layout.iter() {
        let pi = layout.resolve(f, pt);
        let Some(inst) = pi.as_inst() else { continue };
        for (p, r) in fa.coalescing.nodes().site_pairs().filter(|(p, _)| *p == pt) {
            let classes: Vec<String> = (0..4)
                .rev()
                .map(|bit| {
                    let c = fa.coalescing.class_of(p, r, bit).expect("site exists");
                    if c == s0 {
                        "s0".to_owned()
                    } else {
                        format!("c{c}")
                    }
                })
                .collect();
            println!("{pt:<4} {inst:<18} {r}: [{}]", classes.join(", "));
        }
    }
    println!("\nkey expectations (asserted):");
    let v = bec_ir::Reg::phys(2);
    let m = bec_ir::Reg::phys(3);
    let def_a = bec_ir::PointId(2);
    let andi = bec_ir::PointId(6);
    // Fig. 4c: v's def-site bits 2,3 coalesce into s0; bits 0,1 remain.
    assert_eq!(fa.coalescing.is_masked(def_a, v, 3), Some(true));
    assert_eq!(fa.coalescing.is_masked(def_a, v, 2), Some(true));
    assert_eq!(fa.coalescing.is_masked(def_a, v, 1), Some(false));
    assert_eq!(fa.coalescing.is_masked(def_a, v, 0), Some(false));
    // Fig. 4b: m^1 ∼ m^2 ∼ m^3 via the beqz eval-equivalence.
    let c1 = fa.coalescing.class_of(andi, m, 1).unwrap();
    assert_eq!(fa.coalescing.class_of(andi, m, 2), Some(c1));
    assert_eq!(fa.coalescing.class_of(andi, m, 3), Some(c1));
    assert_ne!(fa.coalescing.class_of(andi, m, 0), Some(c1));
    println!("  ✓ [s((p2,v^2))] = [s((p2,v^3))] = [s0]   (Fig. 4c)");
    println!("  ✓ [s((p2,v^0))], [s((p2,v^1))] remain    (Fig. 4c)");
    println!("  ✓ s((p4,m^1)) ∼ s((p4,m^2)) ∼ s((p4,m^3)) (Fig. 4b)");
}
