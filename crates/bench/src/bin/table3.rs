//! Regenerates Table III: fault-injection pruning per benchmark.
//!
//! ```text
//! cargo run -p bec-bench --release --bin table3
//! ```

use bec_bench::{prepare, pruning_row};
use bec_core::report::{format_table, group_digits};
use bec_core::{BecOptions, PruningReport};

fn main() {
    let mut report = PruningReport::default();
    let benchmarks = bec_suite::all();
    for b in &benchmarks {
        let p = prepare(b, &BecOptions::paper());
        report.rows.push(pruning_row(&p));
    }

    println!("TABLE III: RESULTS OF FAULT INJECTION PRUNING BY THE PROPOSED STATIC ANALYSIS\n");
    let headers = [
        "",
        "Live in values",
        "Live in bits",
        "Masked bits",
        "Inferrable bits",
        "Total FI runs pruned",
    ];
    let rows: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                group_digits(r.live_values),
                group_digits(r.live_bits),
                group_digits(r.masked),
                group_digits(r.inferrable),
                format!("{:.2}%", r.pruned_pct()),
            ]
        })
        .collect();
    print!("{}", format_table(&headers, &rows));
    println!(
        "\nAverage pruned: {:.2}%   Max pruned: {:.2}%   (paper: 13.71% avg, 30.04% max)",
        report.average_pruned_pct(),
        report.max_pruned_pct()
    );
}
