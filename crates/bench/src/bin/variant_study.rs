//! The scheduled-variant reliability study over the full benchmark suite
//! (the paper's Table IV, measured by fault injection instead of claimed
//! statically): baseline + best + worst schedule per benchmark, one shared
//! scoring analysis each, a seeded sampled differential campaign per
//! variant, and the committed `BENCH_study.json` baseline.
//!
//! The baseline is a [`bec_telemetry::MetricsSnapshot`] — the same
//! `{"version":1,"metrics":{...}}` schema `bec --metrics-out` writes. The
//! study engine's own registry supplies the aggregate metrics; the bin
//! adds one `study.<benchmark>.<criterion>.*` gauge family per variant
//! and filters out the nondeterministic entries (wall times and
//! machine-dependent worker counts) so CI can byte-compare the file.
//!
//! ```text
//! cargo run -p bec-bench --release --bin variant_study -- \
//!     [--sample N] [--seed S] [--json BENCH_study.json] [--assert-gates] \
//!     [--assert-substrate-speedup X]
//! ```
//!
//! `--assert-gates` exits non-zero unless, on every benchmark:
//!
//! * variant scoring performed exactly ONE `BecAnalysis` (the
//!   shared-analysis invariant, recorded per benchmark in the report);
//! * no statically-masked fault corrupted any variant's execution
//!   (differential soundness);
//! * no reliability-improving schedule grew the live fault surface
//!   (masking-coverage gate);
//! * every variant's fault space equals the baseline's (schedules
//!   permute instructions, they never change the access multiset).
//!
//! The bin always re-runs the study with `--no-golden-reuse` semantics and
//! asserts the two reports render byte-identically — the substrate is a
//! wall-clock lever, never a result lever. `--assert-substrate-speedup X`
//! additionally times the golden phase in isolation (per benchmark: one
//! independent aligned golden per variant vs. one substrate recording plus
//! per-variant derivation) and exits non-zero unless shared goldens are at
//! least X× faster. Timing ratios are printed, never written to the JSON
//! baseline; only the deterministic `study.golden_substrate_hits` and
//! `study.golden_replay_cycles` counters land there.

use bec::study::{run_study, StudyConfig};
use bec_core::report::{format_table, group_digits};
use bec_sim::study::StudySpec;
use bec_sim::{CrossTable, FaultClass, GoldenSubstrate, SimLimits, Simulator};
use bec_telemetry::{Metric, Phase, Telemetry};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The golden-phase micro-benchmark: for every suite benchmark, time the
/// per-variant independent aligned goldens against one substrate recording
/// plus per-variant derivation. Rounds are interleaved and each side keeps
/// its best round (the standard load-spike filter), summed across the
/// suite. Returns `(independent, shared)` wall time.
///
/// Meaningful in release builds only: under `debug_assertions` every
/// derivation re-simulates the variant as a self-check, which erases the
/// very work the substrate exists to skip.
fn time_golden_phase(rounds: u32) -> (Duration, Duration) {
    // The same per-run budget the study's golden probe uses by default.
    let limits = SimLimits { max_cycles: 100_000_000 };
    let options = bec_core::BecOptions::paper();
    let (mut independent, mut shared) = (Duration::ZERO, Duration::ZERO);
    for bench in bec_suite::all() {
        let program = bench.compile().expect("suite benchmark compiles");
        let variants = bec_sched::Scheduler::new(&program, &options).variants();
        let (mut best_i, mut best_s) = (Duration::MAX, Duration::MAX);
        for _ in 0..rounds {
            let t0 = Instant::now();
            for v in &variants {
                let _ = Simulator::with_limits(&v.program, limits).run_golden_aligned();
            }
            best_i = best_i.min(t0.elapsed());
            let t0 = Instant::now();
            let substrate = GoldenSubstrate::record(&program, limits).expect("baseline records");
            for v in &variants {
                substrate.derive(&v.program, &v.permutation).expect("suite variants derive");
            }
            best_s = best_s.min(t0.elapsed());
        }
        independent += best_i;
        shared += best_s;
    }
    (independent, shared)
}

fn main() {
    let mut json_path = None;
    let mut assert_gates = false;
    let mut assert_substrate_speedup: Option<f64> = None;
    let mut sample = 4000u64;
    let mut seed = 0xbec_u64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_path = Some(args.next().expect("--json needs a path")),
            "--assert-gates" => assert_gates = true,
            "--assert-substrate-speedup" => {
                assert_substrate_speedup = Some(
                    args.next()
                        .expect("--assert-substrate-speedup needs a factor")
                        .parse()
                        .expect("numeric speedup factor"),
                );
            }
            "--sample" => {
                sample = args
                    .next()
                    .expect("--sample needs a value")
                    .parse()
                    .expect("numeric sample size");
            }
            "--seed" => {
                seed = args.next().expect("--seed needs a value").parse().expect("numeric seed");
            }
            other => panic!("unknown flag `{other}`"),
        }
    }

    let workers = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("variant study ({workers} cores, {sample} faults per variant, seed {seed})\n");
    let spec = StudySpec { sample: Some(sample), seed, workers, ..StudySpec::default() };
    let cfg = StudyConfig::suite(spec);

    let started = Instant::now();
    let tel = Telemetry::enabled();
    let mut early_exits: BTreeMap<(String, String), u64> = BTreeMap::new();
    let report = run_study(&cfg, None, &tel, |event| {
        if event.phase == Phase::Campaign {
            early_exits.insert(
                (event.benchmark.clone(), event.variant.clone()),
                event.counter("early_exits").unwrap_or(0),
            );
        }
        eprintln!("  {}", event.render());
    })
    .expect("study runs");
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;

    // Soundness pin: the identical study with per-variant independent
    // goldens must render byte-identical report bytes. Its telemetry is
    // discarded so the JSON baseline reflects the default (reuse) run.
    let started_off = Instant::now();
    let cfg_off =
        StudyConfig { spec: StudySpec { golden_reuse: false, ..cfg.spec }, ..cfg.clone() };
    let report_off = run_study(&cfg_off, None, &Telemetry::disabled(), |_| {})
        .expect("independent-golden study runs");
    let wall_off_ms = started_off.elapsed().as_secs_f64() * 1e3;
    assert_eq!(
        report.to_json().render(),
        report_off.to_json().render(),
        "golden reuse changed the study report bytes"
    );

    let mut rows = Vec::new();
    let mut cross = CrossTable::default();
    for b in &report.benchmarks {
        let base = b.baseline().expect("baseline variant present");
        for v in &b.variants {
            cross.merge(&CrossTable::of_report(&v.campaign));
            let counts = v.campaign.outcome_counts();
            rows.push(vec![
                b.name.to_owned(),
                v.criterion.clone(),
                group_digits(v.live_surface),
                format!("{:.2}%", v.coverage_pct()),
                group_digits(counts[FaultClass::Benign.index()]),
                group_digits(counts[FaultClass::Sdc.index()]),
                group_digits(counts[FaultClass::Crash.index()]),
                group_digits(counts[FaultClass::Hang.index()]),
                format!("{:.2}%", v.benign_pct()),
                if v.criterion == base.criterion {
                    "—".to_owned()
                } else {
                    format!("{:+.2}pp", v.benign_pct() - base.benign_pct())
                },
            ]);
        }
    }
    print!(
        "{}",
        format_table(
            &[
                "benchmark",
                "criterion",
                "live surface",
                "masked cov.",
                "benign",
                "sdc",
                "crash",
                "hang",
                "benign %",
                "Δ benign",
            ],
            &rows,
        )
    );
    println!(
        "\nstudy wall time: {wall_ms:.0} ms (shared goldens) vs {wall_off_ms:.0} ms \
         (independent goldens), byte-identical reports; \
         masked-corrupting runs (must be 0): {}",
        cross.masked_corrupting()
    );

    if let Some(path) = json_path {
        // Publish the per-variant Table IV numbers into the same registry
        // the study engine populated, then write one filtered snapshot.
        // Everything kept is a logical integer, so the file is
        // byte-reproducible on any machine at any worker count.
        tel.gauge("study.sample", sample);
        tel.gauge("study.seed", seed);
        for b in &report.benchmarks {
            tel.gauge(
                &format!("study.{}.fault_space", b.name),
                b.baseline().unwrap().campaign.fault_space,
            );
            tel.gauge(&format!("study.{}.scoring_analyses", b.name), b.scoring.analyses);
            for v in &b.variants {
                let prefix = format!("study.{}.{}", b.name, v.criterion);
                let counts = v.campaign.outcome_counts();
                tel.gauge(&format!("{prefix}.runs"), v.campaign.runs());
                tel.gauge(&format!("{prefix}.live_surface"), v.live_surface);
                tel.gauge(
                    &format!("{prefix}.early_exits"),
                    early_exits.get(&(b.name.clone(), v.criterion.clone())).copied().unwrap_or(0),
                );
                for c in FaultClass::ALL {
                    tel.gauge(&format!("{prefix}.outcome.{}", c.name()), counts[c.index()]);
                }
            }
        }
        let baseline = tel.snapshot().filtered(|name, metric| {
            !matches!(metric, Metric::TimeMs(_)) && !name.ends_with(".workers")
        });
        std::fs::write(&path, baseline.to_json_string() + "\n").expect("baseline written");
        println!("wrote {path}");
    }

    if assert_gates {
        for b in &report.benchmarks {
            assert_eq!(
                b.scoring.analyses, 1,
                "{}: variant scoring must reuse exactly one BecAnalysis",
                b.name
            );
            let spaces: Vec<u64> = b.variants.iter().map(|v| v.campaign.fault_space).collect();
            assert!(
                spaces.windows(2).all(|w| w[0] == w[1]),
                "{}: fault space must be schedule-invariant: {spaces:?}",
                b.name
            );
        }
        assert!(report.violations().is_empty(), "soundness violations: {:?}", report.violations());
        assert!(
            report.coverage_regressions().is_empty(),
            "coverage regressions: {:?}",
            report.coverage_regressions()
        );
        assert!(
            report.equivalence_failures().is_empty(),
            "equivalence failures: {:?}",
            report.equivalence_failures()
        );
        println!("all gates passed: 1 scoring analysis per benchmark, soundness + coverage hold");
    }

    if let Some(min) = assert_substrate_speedup {
        let (independent, shared) = time_golden_phase(10);
        let speedup = independent.as_secs_f64() / shared.as_secs_f64().max(1e-9);
        println!(
            "golden phase: {:.1} ms independent vs {:.1} ms shared substrate ({speedup:.2}x)",
            independent.as_secs_f64() * 1e3,
            shared.as_secs_f64() * 1e3,
        );
        assert!(
            speedup >= min,
            "shared-substrate golden phase speedup {speedup:.2}x below the {min}x gate"
        );
    }
}
