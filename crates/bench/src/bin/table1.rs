//! Regenerates Table I: the cost of exhaustive fault-injection campaigns
//! (wall time and archive size of distinguishable traces).
//!
//! The paper's campaigns took hours and hundreds of gigabytes on full
//! workloads; this harness demonstrates the same cost *asymmetry* on scaled
//! workloads — the exhaustive campaign cost explodes with trace length,
//! while the BEC analysis runs once at compile time.
//!
//! ```text
//! cargo run -p bec-bench --release --bin table1
//! ```

use bec_core::report::{format_table, group_digits};
use bec_core::{BecAnalysis, BecOptions};
use bec_sim::campaign::{exhaustive_faults, run_campaign, CampaignKind};
use bec_sim::Simulator;
use std::time::Instant;

fn main() {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut rows = Vec::new();
    for b in bec_suite::tiny() {
        let program = b.compile().expect("benchmark compiles");
        let sim = Simulator::new(&program);
        let golden = sim.run_golden();
        let faults = exhaustive_faults(&program, &golden);
        let report = run_campaign(&sim, &golden, &faults, CampaignKind::Exhaustive, threads);

        // For comparison: one BEC analysis run of the same program.
        let t0 = Instant::now();
        let _bec = BecAnalysis::analyze(&program, &BecOptions::paper());
        let analysis_time = t0.elapsed();

        rows.push(vec![
            b.name.to_owned(),
            group_digits(golden.cycles()),
            group_digits(report.runs),
            format!("{:.2} s", report.wall.as_secs_f64()),
            format!("{:.1} MB", report.trace_bytes as f64 / 1e6),
            format!("{:.1} ms", analysis_time.as_secs_f64() * 1e3),
        ]);
    }

    println!(
        "TABLE I: TIME AND DISK SPACE REQUIREMENTS FOR THE EXHAUSTIVE FAULT INJECTION\nCAMPAIGN (scaled workloads; the BEC analysis column shows the compile-time\nalternative's cost on the same program)\n"
    );
    let headers =
        ["Benchmark", "Cycles", "FI runs", "Campaign time", "Trace archive", "BEC analysis"];
    print!("{}", format_table(&headers, &rows));
    println!(
        "\npaper (full workloads): bitcount 0.5h/1GB, AES 2h/7GB, CRC32 7h/116GB,\nSHA 10h/100GB, RSA 50h/700GB"
    );
}
