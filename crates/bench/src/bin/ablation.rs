//! Ablation study over the coalescing rule set (DESIGN.md §6): how much of
//! the pruning comes from branch rules alone, the paper's rule set, and the
//! two sound extensions (golden masking, cross-operand eval-equivalence).
//!
//! ```text
//! cargo run -p bec-bench --release --bin ablation
//! ```

use bec_bench::{prepare, pruning_row};
use bec_core::report::format_table;
use bec_core::BecOptions;

fn main() {
    let variants: [(&str, BecOptions); 3] = [
        ("branches-only", BecOptions::branches_only()),
        ("paper", BecOptions::paper()),
        ("extended", BecOptions::extended()),
    ];
    let benchmarks = bec_suite::all();
    let mut rows = Vec::new();
    for b in &benchmarks {
        let mut cells = vec![b.name.to_owned()];
        for (_, opts) in &variants {
            let p = prepare(b, opts);
            let r = pruning_row(&p);
            cells.push(format!("{:.2}%", r.pruned_pct()));
        }
        rows.push(cells);
    }
    println!("ABLATION: FI runs pruned under different coalescing rule sets\n");
    let headers = ["", "branches-only", "paper rules", "+extensions"];
    print!("{}", format_table(&headers, &rows));
    println!("\nbranches-only: no eval-equivalence on slt/sltu/seqz/snez");
    println!("+extensions:   golden-outcome masking and cross-operand equivalence");
}
