//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a regenerating binary:
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table I (exhaustive campaign cost) | `table1` |
//! | Table II (validation) | `table2` |
//! | Table III (fault-injection pruning) | `table3` |
//! | Table IV (scheduling reliability) | `table4` |
//! | Fig. 2 (motivating example) | `fig2` |
//! | Fig. 4 (coalescing walkthrough) | `fig4` |
//! | Rule-set ablations (DESIGN.md §6) | `ablation` |

use bec_core::{pruning, surface, BecAnalysis, BecOptions, PruningRow, SurfaceRow};
use bec_ir::Program;
use bec_sched::{schedule_program, Criterion};
use bec_sim::{GoldenRun, SimLimits, Simulator};
use bec_suite::Benchmark;

/// A compiled-and-profiled benchmark ready for accounting.
pub struct Prepared {
    /// The benchmark's name.
    pub name: &'static str,
    /// The compiled machine program.
    pub program: Program,
    /// BEC analysis results.
    pub bec: BecAnalysis,
    /// Golden run (profile + trace).
    pub golden: GoldenRun,
}

/// Compiles `b`, runs the golden run and the BEC analysis.
///
/// # Panics
///
/// Panics if the benchmark fails to compile or does not run to completion —
/// both are guarded by the suite's oracle tests.
pub fn prepare(b: &Benchmark, options: &BecOptions) -> Prepared {
    let program = b.compile().expect("benchmark compiles");
    let bec = BecAnalysis::analyze(&program, options);
    let sim = Simulator::with_limits(&program, SimLimits { max_cycles: 10_000_000 });
    let golden = sim.run_golden();
    assert_eq!(golden.result.outcome, bec_sim::ExecOutcome::Completed, "{} must complete", b.name);
    assert_eq!(golden.outputs(), b.expected.as_slice(), "{}: oracle mismatch", b.name);
    Prepared { name: b.name, program, bec, golden }
}

/// The Table III row of one prepared benchmark.
pub fn pruning_row(p: &Prepared) -> PruningRow {
    pruning::pruning_row(p.name, &p.program, &p.bec, &p.golden.profile)
}

/// The fault surface of one prepared benchmark (a Table IV cell).
pub fn surface_row(p: &Prepared) -> SurfaceRow {
    surface::surface_row(p.name, &p.program, &p.bec, &p.golden.profile)
}

/// Reschedules a benchmark under `criterion` and measures the resulting
/// fault surface (re-running analysis and golden run on the new schedule).
pub fn scheduled_surface(b: &Benchmark, criterion: Criterion, options: &BecOptions) -> SurfaceRow {
    let program = b.compile().expect("benchmark compiles");
    let scheduled = schedule_program(&program, criterion);
    measure_scheduled(b, &scheduled, options)
}

/// [`scheduled_surface`] for every criterion at once, scoring all
/// schedules against ONE shared analysis of the original program
/// (`bec_sched::Scheduler`). Returns rows in [`Criterion::ALL`] order.
pub fn scheduled_surfaces(b: &Benchmark, options: &BecOptions) -> Vec<(Criterion, SurfaceRow)> {
    let program = b.compile().expect("benchmark compiles");
    let scheduler = bec_sched::Scheduler::new(&program, options);
    let rows = scheduler
        .variants()
        .into_iter()
        .map(|v| (v.criterion, measure_scheduled(b, &v.program, options)))
        .collect();
    assert_eq!(scheduler.analyses_run(), 1, "{}: one scoring analysis", b.name);
    rows
}

/// Measures the fault surface of one (scheduled) program of benchmark `b`,
/// asserting it still completes with the oracle outputs.
fn measure_scheduled(b: &Benchmark, scheduled: &Program, options: &BecOptions) -> SurfaceRow {
    let bec = BecAnalysis::analyze(scheduled, options);
    let sim = Simulator::with_limits(scheduled, SimLimits { max_cycles: 10_000_000 });
    let golden = sim.run_golden();
    assert_eq!(
        golden.result.outcome,
        bec_sim::ExecOutcome::Completed,
        "{}: scheduled program must still complete",
        b.name
    );
    assert_eq!(
        golden.outputs(),
        b.expected.as_slice(),
        "{}: scheduling changed observable behaviour",
        b.name
    );
    surface::surface_row(b.name, scheduled, &bec, &golden.profile)
}

/// The paper's motivating example program (Fig. 2a).
pub fn motivating_example() -> Program {
    bec_ir::parse_program(
        r#"
machine xlen=4 regs=4 zero=none
func @main(args=0, ret=none) {
entry:
    li r0, 0
    li r1, 7
    j loop
loop:
    andi r2, r1, 1
    andi r3, r1, 3
    addi r1, r1, -1
    seqz r2, r2
    snez r3, r3
    and  r2, r2, r3
    add  r0, r0, r2
    bnez r1, loop
exit:
    ret r0
}
"#,
    )
    .expect("motivating example parses")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_runs_a_benchmark_end_to_end() {
        let b = bec_suite::benchmark("crc32").unwrap();
        let p = prepare(&b, &BecOptions::paper());
        let row = pruning_row(&p);
        assert!(row.live_values > 0);
        assert!(row.live_bits <= row.live_values);
        let s = surface_row(&p);
        assert!(s.live_sites > 0);
        assert!(s.live_sites <= s.total_fault_space);
    }
}
