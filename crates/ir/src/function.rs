//! Functions, basic blocks and terminators.

use crate::inst::{Inst, TerminatorKind};
use crate::reg::Reg;
use std::fmt;

/// Identifier of a basic block within its function.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl BlockId {
    /// The block's index into [`Function::blocks`].
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Re-export: terminators live in [`crate::inst`] but are part of the block
/// structure, so the alias keeps call sites readable.
pub type Terminator = TerminatorKind;

/// A basic block: a label, straight-line instructions, and one terminator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// Human-readable label (unique within the function).
    pub label: String,
    /// Straight-line body.
    pub insts: Vec<Inst>,
    /// The block terminator.
    pub term: Terminator,
}

impl Block {
    /// Creates an empty block that falls into nothing (placeholder `Exit`
    /// terminator; builders replace it).
    pub fn new(label: impl Into<String>) -> Block {
        Block { label: label.into(), insts: Vec::new(), term: Terminator::Exit }
    }

    /// Number of program points contributed by this block
    /// (instructions plus the terminator).
    pub fn point_count(&self) -> usize {
        self.insts.len() + 1
    }
}

/// ABI signature of a function: how many register arguments it takes
/// (passed in `a0..a{n-1}`) and whether it returns a value in `a0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Number of register arguments (≤ 8 under the RISC-V ABI).
    pub args: u8,
    /// Whether a value is returned in `a0`.
    pub has_ret: bool,
}

impl Signature {
    /// Signature with `args` arguments and a return value.
    pub fn returning(args: u8) -> Signature {
        Signature { args, has_ret: true }
    }

    /// Signature with `args` arguments and no return value.
    pub fn void(args: u8) -> Signature {
        Signature { args, has_ret: false }
    }

    /// The argument registers implied by the signature.
    pub fn arg_regs(&self) -> Vec<Reg> {
        (0..self.args as u32).map(Reg::arg).collect()
    }
}

impl Default for Signature {
    fn default() -> Self {
        Signature::void(0)
    }
}

/// A function: named, with a signature and a list of basic blocks.
/// Block 0 is the entry block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Function {
    /// Function name (without the `@` sigil).
    pub name: String,
    /// ABI signature.
    pub sig: Signature,
    /// Basic blocks; `BlockId(i)` indexes this vector. Block 0 is the entry.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>, sig: Signature) -> Function {
        Function { name: name.into(), sig, blocks: Vec::new() }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// Looks up a block by label.
    pub fn block_by_label(&self, label: &str) -> Option<BlockId> {
        self.blocks.iter().position(|b| b.label == label).map(|i| BlockId(i as u32))
    }

    /// Shared access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Total number of program points (instructions + terminators).
    pub fn point_count(&self) -> usize {
        self.blocks.iter().map(Block::point_count).sum()
    }

    /// Iterates over every instruction in block order (terminators excluded).
    pub fn insts(&self) -> impl Iterator<Item = &Inst> {
        self.blocks.iter().flat_map(|b| b.insts.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Inst;

    #[test]
    fn point_count_includes_terminators() {
        let mut f = Function::new("f", Signature::void(0));
        let mut b = Block::new("entry");
        b.insts.push(Inst::Nop);
        b.insts.push(Inst::Nop);
        f.blocks.push(b);
        f.blocks.push(Block::new("exit"));
        assert_eq!(f.point_count(), 4);
    }

    #[test]
    fn block_lookup_by_label() {
        let mut f = Function::new("f", Signature::void(0));
        f.blocks.push(Block::new("entry"));
        f.blocks.push(Block::new("loop"));
        assert_eq!(f.block_by_label("loop"), Some(BlockId(1)));
        assert_eq!(f.block_by_label("nope"), None);
    }

    #[test]
    fn signature_arg_regs() {
        assert_eq!(Signature::returning(2).arg_regs(), vec![Reg::A0, Reg::A1]);
        assert!(Signature::void(0).arg_regs().is_empty());
    }
}
