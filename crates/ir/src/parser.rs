//! Textual assembly parser.
//!
//! The syntax mirrors RISC-V assembly with explicit basic blocks:
//!
//! ```text
//! machine xlen=32 regs=32 zero=x0      # optional, defaults to rv32
//! global table: word[4] = { 1, 2, 3, 4 }
//! entry @main                          # optional, defaults to main
//! func @main(args=0, ret=none) {
//! entry:
//!     li   t0, 7
//!     j    loop
//! loop:
//!     addi t0, t0, -1
//!     bnez t0, loop, exit
//! exit:
//!     exit
//! }
//! ```
//!
//! Conditional branches may omit the fallthrough target, in which case the
//! next block in textual order is used. Comments start with `#` or `;`.

use crate::config::MachineConfig;
use crate::error::IrError;
use crate::function::{Block, BlockId, Function, Signature, Terminator};
use crate::inst::{AluOp, Cond, Inst, MemWidth};
use crate::program::{Global, Program};
use crate::reg::Reg;
use std::collections::HashMap;

/// Parses a whole program from assembly text.
///
/// # Errors
///
/// Returns an [`IrError`] with the offending line on any syntax error,
/// unknown mnemonic, bad register name or unresolved label.
pub fn parse_program(src: &str) -> Result<Program, IrError> {
    Parser::new(src).parse()
}

struct Parser<'a> {
    lines: Vec<(usize, &'a str)>,
    pos: usize,
}

/// A terminator with possibly-unresolved textual targets.
enum RawTerm {
    Jump(String),
    Branch { cond: Cond, rs1: Reg, rs2: Option<Reg>, taken: String, fallthrough: Option<String> },
    Ret(Vec<Reg>),
    Exit,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Parser<'a> {
        let lines = src
            .lines()
            .enumerate()
            .map(|(i, l)| {
                let l = l.split(['#', ';']).next().unwrap_or("").trim();
                (i + 1, l)
            })
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0 }
    }

    fn peek(&self) -> Option<(usize, &'a str)> {
        self.lines.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let l = self.peek();
        self.pos += 1;
        l
    }

    fn parse(mut self) -> Result<Program, IrError> {
        let mut config = MachineConfig::rv32();
        let mut entry = None::<String>;
        let mut globals = Vec::new();
        let mut functions: Vec<Function> = Vec::new();

        while let Some((ln, line)) = self.next() {
            if let Some(rest) = line.strip_prefix("machine ") {
                if !functions.is_empty() || !globals.is_empty() {
                    return Err(IrError::at_line(ln, "machine directive after content"));
                }
                config = parse_machine(ln, rest)?;
            } else if let Some(rest) = line.strip_prefix("global ") {
                globals.push(parse_global(ln, rest)?);
            } else if let Some(rest) = line.strip_prefix("entry ") {
                entry = Some(parse_func_name(ln, rest.trim())?);
            } else if let Some(rest) = line.strip_prefix("func ") {
                functions.push(self.parse_function(ln, rest)?);
            } else {
                return Err(IrError::at_line(ln, format!("unexpected top-level line: `{line}`")));
            }
        }

        let mut p = Program::new(config);
        p.globals = globals;
        p.functions = functions;
        if let Some(e) = entry {
            p.entry = e;
        }
        Ok(p)
    }

    fn parse_function(&mut self, ln: usize, header: &str) -> Result<Function, IrError> {
        // header: @name(args=N, ret=a0|none) {
        let header = header.trim();
        let header = header
            .strip_suffix('{')
            .ok_or_else(|| IrError::at_line(ln, "function header must end with `{`"))?
            .trim();
        let open = header
            .find('(')
            .ok_or_else(|| IrError::at_line(ln, "missing `(` in function header"))?;
        let name = parse_func_name(ln, header[..open].trim())?;
        let inner = header[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| IrError::at_line(ln, "missing `)` in function header"))?;
        let mut args = 0u8;
        let mut has_ret = false;
        for part in inner.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            if let Some(v) = part.strip_prefix("args=") {
                args =
                    v.parse().map_err(|_| IrError::at_line(ln, format!("bad args count `{v}`")))?;
            } else if let Some(v) = part.strip_prefix("ret=") {
                has_ret = match v {
                    "none" => false,
                    "a0" => true,
                    other => return Err(IrError::at_line(ln, format!("bad ret spec `{other}`"))),
                };
            } else {
                return Err(IrError::at_line(ln, format!("bad signature item `{part}`")));
            }
        }
        let sig = Signature { args, has_ret };

        // Body: labelled blocks until `}`.
        let mut raw_blocks: Vec<(String, Vec<Inst>, Option<RawTerm>, usize)> = Vec::new();
        loop {
            let (ln, line) =
                self.next().ok_or_else(|| IrError::at_line(ln, "unterminated function body"))?;
            if line == "}" {
                break;
            }
            if let Some(label) = line.strip_suffix(':') {
                let label = label.trim();
                if raw_blocks.iter().any(|(l, ..)| l == label) {
                    return Err(IrError::at_line(ln, format!("duplicate label `{label}`")));
                }
                raw_blocks.push((label.to_owned(), Vec::new(), None, ln));
                continue;
            }
            let blk = raw_blocks
                .last_mut()
                .ok_or_else(|| IrError::at_line(ln, "instruction before any label"))?;
            if blk.2.is_some() {
                return Err(IrError::at_line(ln, "instruction after block terminator"));
            }
            match parse_line(ln, line)? {
                Parsed::Inst(i) => blk.1.push(i),
                Parsed::Term(t) => blk.2 = Some(t),
            }
        }

        // Resolve labels.
        let mut label_ids: HashMap<String, BlockId> = HashMap::new();
        for (i, (label, ..)) in raw_blocks.iter().enumerate() {
            label_ids.insert(label.clone(), BlockId(i as u32));
        }
        let n = raw_blocks.len();
        let mut f = Function::new(name, sig);
        for (i, (label, insts, term, bln)) in raw_blocks.into_iter().enumerate() {
            let resolve = |l: &str| -> Result<BlockId, IrError> {
                label_ids
                    .get(l)
                    .copied()
                    .ok_or_else(|| IrError::at_line(bln, format!("unresolved label `{l}`")))
            };
            let term = term.ok_or_else(|| {
                IrError::at_line(bln, format!("block `{label}` lacks terminator"))
            })?;
            let term = match term {
                RawTerm::Jump(t) => Terminator::Jump { target: resolve(&t)? },
                RawTerm::Branch { cond, rs1, rs2, taken, fallthrough } => {
                    let fallthrough = match fallthrough {
                        Some(l) => resolve(&l)?,
                        None => {
                            if i + 1 >= n {
                                return Err(IrError::at_line(
                                    bln,
                                    "branch in last block needs explicit fallthrough",
                                ));
                            }
                            BlockId(i as u32 + 1)
                        }
                    };
                    Terminator::Branch { cond, rs1, rs2, taken: resolve(&taken)?, fallthrough }
                }
                RawTerm::Ret(reads) => Terminator::Ret { reads },
                RawTerm::Exit => Terminator::Exit,
            };
            f.blocks.push(Block { label, insts, term });
        }
        Ok(f)
    }
}

enum Parsed {
    Inst(Inst),
    Term(RawTerm),
}

fn parse_machine(ln: usize, rest: &str) -> Result<MachineConfig, IrError> {
    let mut c = MachineConfig::rv32();
    for part in rest.split_whitespace() {
        if let Some(v) = part.strip_prefix("xlen=") {
            c.xlen = v.parse().map_err(|_| IrError::at_line(ln, format!("bad xlen `{v}`")))?;
            if c.xlen == 0 || c.xlen > 64 {
                return Err(IrError::at_line(ln, "xlen must be in 1..=64"));
            }
        } else if let Some(v) = part.strip_prefix("regs=") {
            c.num_regs = v.parse().map_err(|_| IrError::at_line(ln, format!("bad regs `{v}`")))?;
        } else if let Some(v) = part.strip_prefix("zero=") {
            c.zero_reg = if v == "none" { None } else { Some(parse_reg(ln, v)?) };
        } else {
            return Err(IrError::at_line(ln, format!("bad machine item `{part}`")));
        }
    }
    Ok(c)
}

fn parse_global(ln: usize, rest: &str) -> Result<Global, IrError> {
    // name: word[N] [= { a, b, ... }]   |   name: byte[N] [= { ... }]
    let (name, decl) =
        rest.split_once(':').ok_or_else(|| IrError::at_line(ln, "global needs `name: type[N]`"))?;
    let name = name.trim().to_owned();
    let (ty_part, init_part) = match decl.split_once('=') {
        Some((t, i)) => (t.trim(), Some(i.trim())),
        None => (decl.trim(), None),
    };
    let (elem, count) = if let Some(r) = ty_part.strip_prefix("word[") {
        (4u64, r)
    } else if let Some(r) = ty_part.strip_prefix("byte[") {
        (1u64, r)
    } else {
        return Err(IrError::at_line(ln, format!("bad global type `{ty_part}`")));
    };
    let count: u64 = count
        .strip_suffix(']')
        .and_then(|c| c.trim().parse().ok())
        .ok_or_else(|| IrError::at_line(ln, "bad array length"))?;
    let size = elem * count;
    let mut init = Vec::new();
    if let Some(list) = init_part {
        let list = list
            .strip_prefix('{')
            .and_then(|l| l.strip_suffix('}'))
            .ok_or_else(|| IrError::at_line(ln, "initializer must be `{ ... }`"))?;
        for item in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let v = parse_imm(ln, item)?;
            if elem == 4 {
                init.extend_from_slice(&(v as u32).to_le_bytes());
            } else {
                init.push(v as u8);
            }
        }
        if init.len() as u64 > size {
            return Err(IrError::at_line(ln, "initializer longer than declared size"));
        }
    }
    Ok(Global { name, size, init })
}

fn parse_func_name(ln: usize, s: &str) -> Result<String, IrError> {
    s.strip_prefix('@')
        .map(|n| n.to_owned())
        .ok_or_else(|| IrError::at_line(ln, format!("function name must start with `@`: `{s}`")))
}

fn parse_reg(ln: usize, s: &str) -> Result<Reg, IrError> {
    Reg::parse(s.trim()).ok_or_else(|| IrError::at_line(ln, format!("unknown register `{s}`")))
}

fn parse_imm(ln: usize, s: &str) -> Result<i64, IrError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(h) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(h, 16).map(|v| v as i64)
    } else {
        body.parse::<i64>()
    }
    .map_err(|_| IrError::at_line(ln, format!("bad immediate `{s}`")))?;
    Ok(if neg { -v } else { v })
}

/// Parses `off(base)` memory operands.
fn parse_mem(ln: usize, s: &str) -> Result<(i64, Reg), IrError> {
    let open =
        s.find('(').ok_or_else(|| IrError::at_line(ln, format!("bad memory operand `{s}`")))?;
    let off = if s[..open].trim().is_empty() { 0 } else { parse_imm(ln, &s[..open])? };
    let base = s[open + 1..]
        .strip_suffix(')')
        .ok_or_else(|| IrError::at_line(ln, format!("bad memory operand `{s}`")))?;
    Ok((off, parse_reg(ln, base)?))
}

fn parse_line(ln: usize, line: &str) -> Result<Parsed, IrError> {
    let (mn, rest) = match line.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (line, ""),
    };
    let ops: Vec<&str> =
        if rest.is_empty() { Vec::new() } else { rest.split(',').map(str::trim).collect() };
    let want = |n: usize| -> Result<(), IrError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(IrError::at_line(ln, format!("`{mn}` expects {n} operands, got {}", ops.len())))
        }
    };

    // Register-register ALU ops.
    let rr_ops: &[(&str, AluOp)] = &[
        ("add", AluOp::Add),
        ("sub", AluOp::Sub),
        ("and", AluOp::And),
        ("or", AluOp::Or),
        ("xor", AluOp::Xor),
        ("sll", AluOp::Sll),
        ("srl", AluOp::Srl),
        ("sra", AluOp::Sra),
        ("slt", AluOp::Slt),
        ("sltu", AluOp::Sltu),
        ("mul", AluOp::Mul),
        ("mulh", AluOp::Mulh),
        ("mulhu", AluOp::Mulhu),
        ("div", AluOp::Div),
        ("divu", AluOp::Divu),
        ("rem", AluOp::Rem),
        ("remu", AluOp::Remu),
    ];
    if let Some((_, op)) = rr_ops.iter().find(|(m, _)| *m == mn) {
        want(3)?;
        return Ok(Parsed::Inst(Inst::Alu {
            op: *op,
            rd: parse_reg(ln, ops[0])?,
            rs1: parse_reg(ln, ops[1])?,
            rs2: parse_reg(ln, ops[2])?,
        }));
    }

    // Immediate ALU ops.
    let ri_ops: &[(&str, AluOp)] = &[
        ("addi", AluOp::Add),
        ("andi", AluOp::And),
        ("ori", AluOp::Or),
        ("xori", AluOp::Xor),
        ("slli", AluOp::Sll),
        ("srli", AluOp::Srl),
        ("srai", AluOp::Sra),
        ("slti", AluOp::Slt),
        ("sltiu", AluOp::Sltu),
    ];
    if let Some((_, op)) = ri_ops.iter().find(|(m, _)| *m == mn) {
        want(3)?;
        return Ok(Parsed::Inst(Inst::AluImm {
            op: *op,
            rd: parse_reg(ln, ops[0])?,
            rs1: parse_reg(ln, ops[1])?,
            imm: parse_imm(ln, ops[2])?,
        }));
    }

    // Loads and stores.
    let loads: &[(&str, MemWidth, bool)] = &[
        ("lw", MemWidth::Word, true),
        ("lh", MemWidth::Half, true),
        ("lhu", MemWidth::Half, false),
        ("lb", MemWidth::Byte, true),
        ("lbu", MemWidth::Byte, false),
    ];
    if let Some((_, width, signed)) = loads.iter().find(|(m, ..)| *m == mn) {
        want(2)?;
        let (offset, base) = parse_mem(ln, ops[1])?;
        return Ok(Parsed::Inst(Inst::Load {
            rd: parse_reg(ln, ops[0])?,
            base,
            offset,
            width: *width,
            signed: *signed,
        }));
    }
    let stores: &[(&str, MemWidth)] =
        &[("sw", MemWidth::Word), ("sh", MemWidth::Half), ("sb", MemWidth::Byte)];
    if let Some((_, width)) = stores.iter().find(|(m, _)| *m == mn) {
        want(2)?;
        let (offset, base) = parse_mem(ln, ops[1])?;
        return Ok(Parsed::Inst(Inst::Store {
            rs: parse_reg(ln, ops[0])?,
            base,
            offset,
            width: *width,
        }));
    }

    // Branches.
    let branches: &[(&str, Cond)] = &[
        ("beq", Cond::Eq),
        ("bne", Cond::Ne),
        ("blt", Cond::Lt),
        ("bge", Cond::Ge),
        ("bltu", Cond::Ltu),
        ("bgeu", Cond::Geu),
    ];
    if let Some((_, cond)) = branches.iter().find(|(m, _)| *m == mn) {
        if ops.len() != 3 && ops.len() != 4 {
            return Err(IrError::at_line(ln, format!("`{mn}` expects 3 or 4 operands")));
        }
        return Ok(Parsed::Term(RawTerm::Branch {
            cond: *cond,
            rs1: parse_reg(ln, ops[0])?,
            rs2: Some(parse_reg(ln, ops[1])?),
            taken: ops[2].to_owned(),
            fallthrough: ops.get(3).map(|s| (*s).to_owned()),
        }));
    }
    let z_branches: &[(&str, Cond)] =
        &[("beqz", Cond::Eq), ("bnez", Cond::Ne), ("bltz", Cond::Lt), ("bgez", Cond::Ge)];
    if let Some((_, cond)) = z_branches.iter().find(|(m, _)| *m == mn) {
        if ops.len() != 2 && ops.len() != 3 {
            return Err(IrError::at_line(ln, format!("`{mn}` expects 2 or 3 operands")));
        }
        return Ok(Parsed::Term(RawTerm::Branch {
            cond: *cond,
            rs1: parse_reg(ln, ops[0])?,
            rs2: None,
            taken: ops[1].to_owned(),
            fallthrough: ops.get(2).map(|s| (*s).to_owned()),
        }));
    }

    match mn {
        "li" => {
            want(2)?;
            Ok(Parsed::Inst(Inst::Li { rd: parse_reg(ln, ops[0])?, imm: parse_imm(ln, ops[1])? }))
        }
        "la" => {
            want(2)?;
            let g = ops[1]
                .strip_prefix('@')
                .ok_or_else(|| IrError::at_line(ln, "la needs `@global`"))?;
            Ok(Parsed::Inst(Inst::La { rd: parse_reg(ln, ops[0])?, global: g.to_owned() }))
        }
        "mv" => {
            want(2)?;
            Ok(Parsed::Inst(Inst::Mv { rd: parse_reg(ln, ops[0])?, rs: parse_reg(ln, ops[1])? }))
        }
        "neg" => {
            want(2)?;
            Ok(Parsed::Inst(Inst::Neg { rd: parse_reg(ln, ops[0])?, rs: parse_reg(ln, ops[1])? }))
        }
        "not" => {
            // Desugars to xori rd, rs, -1 (the analysis rules for xor apply).
            want(2)?;
            Ok(Parsed::Inst(Inst::AluImm {
                op: AluOp::Xor,
                rd: parse_reg(ln, ops[0])?,
                rs1: parse_reg(ln, ops[1])?,
                imm: -1,
            }))
        }
        "seqz" => {
            want(2)?;
            Ok(Parsed::Inst(Inst::Seqz { rd: parse_reg(ln, ops[0])?, rs: parse_reg(ln, ops[1])? }))
        }
        "snez" => {
            want(2)?;
            Ok(Parsed::Inst(Inst::Snez { rd: parse_reg(ln, ops[0])?, rs: parse_reg(ln, ops[1])? }))
        }
        "call" => {
            want(1)?;
            let g = ops[0]
                .strip_prefix('@')
                .ok_or_else(|| IrError::at_line(ln, "call needs `@function`"))?;
            Ok(Parsed::Inst(Inst::Call { callee: g.to_owned() }))
        }
        "print" => {
            want(1)?;
            Ok(Parsed::Inst(Inst::Print { rs: parse_reg(ln, ops[0])? }))
        }
        "nop" => {
            want(0)?;
            Ok(Parsed::Inst(Inst::Nop))
        }
        "j" => {
            want(1)?;
            Ok(Parsed::Term(RawTerm::Jump(ops[0].to_owned())))
        }
        "ret" => {
            let regs = ops.iter().map(|s| parse_reg(ln, s)).collect::<Result<Vec<_>, _>>()?;
            Ok(Parsed::Term(RawTerm::Ret(regs)))
        }
        "exit" => {
            want(0)?;
            Ok(Parsed::Term(RawTerm::Exit))
        }
        other => Err(IrError::at_line(ln, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_motivating_example_shape() {
        let src = r#"
# the paper's countYears example on a 4-bit machine
machine xlen=4 regs=4 zero=none
func @main(args=0, ret=none) {
entry:
    li r0, 0
    li r1, 7
    j loop
loop:
    andi r2, r1, 1
    andi r3, r1, 3
    addi r1, r1, -1
    seqz r2, r2
    snez r3, r3
    and  r2, r2, r3
    add  r0, r0, r2
    bnez r1, loop
exit:
    ret r0
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.config, MachineConfig::example4());
        let f = p.entry_function();
        assert_eq!(f.blocks.len(), 3);
        // entry: li, li, j (3) + loop: 7 insts + bnez (8) + exit: ret (1).
        assert_eq!(f.point_count(), 12);
        // Implicit fallthrough resolves to the next block.
        match &f.blocks[1].term {
            Terminator::Branch { fallthrough, .. } => assert_eq!(*fallthrough, BlockId(2)),
            t => panic!("expected branch, got {t:?}"),
        }
    }

    #[test]
    fn parses_globals_and_memory_ops() {
        let src = r#"
global tbl: word[3] = { 1, 0x10, 3 }
global buf: byte[8]
func @main(args=0, ret=none) {
entry:
    la  t0, @tbl
    lw  t1, 4(t0)
    sw  t1, 0(t0)
    lbu t2, (t0)
    exit
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.globals.len(), 2);
        assert_eq!(p.globals[0].init.len(), 12);
        assert_eq!(&p.globals[0].init[4..8], &16u32.to_le_bytes());
        let f = p.entry_function();
        assert!(matches!(f.blocks[0].insts[3], Inst::Load { offset: 0, .. }));
    }

    #[test]
    fn rejects_unknown_mnemonics_with_line() {
        let src = "func @main(args=0, ret=none) {\nentry:\n    frobnicate t0\n    exit\n}\n";
        let err = parse_program(src).unwrap_err();
        assert_eq!(err.line(), Some(3));
        assert!(err.message().contains("frobnicate"));
    }

    #[test]
    fn rejects_unresolved_labels() {
        let src = "func @main(args=0, ret=none) {\nentry:\n    j nowhere\n}\n";
        assert!(parse_program(src).is_err());
    }

    #[test]
    fn not_desugars_to_xori() {
        let src = "func @main(args=0, ret=none) {\nentry:\n    not t0, t1\n    exit\n}\n";
        let p = parse_program(src).unwrap();
        assert_eq!(
            p.entry_function().blocks[0].insts[0],
            Inst::AluImm { op: AluOp::Xor, rd: Reg::T0, rs1: Reg::T1, imm: -1 }
        );
    }

    #[test]
    fn parses_signatures() {
        let src = "func @f(args=2, ret=a0) {\nentry:\n    ret a0\n}\n";
        let p = parse_program(src).unwrap();
        let f = p.function("f").unwrap();
        assert_eq!(f.sig, Signature::returning(2));
        assert_eq!(f.blocks[0].term, Terminator::Ret { reads: vec![Reg::A0] });
    }
}
