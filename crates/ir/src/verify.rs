//! Structural verification of machine programs.

use crate::error::IrError;
use crate::inst::Inst;
use crate::point::PointLayout;
use crate::program::Program;
use crate::reg::Reg;

/// Checks a program's structural invariants before it is handed to the
/// analysis or the simulator:
///
/// * the entry function exists;
/// * every register is physical and within the register file;
/// * shift immediates fit the word width;
/// * every call targets a defined function;
/// * every `la` targets a defined global;
/// * every branch target is a valid block id.
///
/// # Errors
///
/// Returns the first violated invariant as an [`IrError`].
pub fn verify_program(p: &Program) -> Result<(), IrError> {
    if p.function(&p.entry).is_none() {
        return Err(IrError::new(format!("entry function `@{}` not found", p.entry)));
    }
    for (i, f) in p.functions.iter().enumerate() {
        if p.functions.iter().skip(i + 1).any(|g| g.name == f.name) {
            return Err(IrError::new(format!("duplicate function `@{}`", f.name)));
        }
    }
    for f in &p.functions {
        verify_function(p, f)?;
    }
    Ok(())
}

fn verify_function(p: &Program, f: &crate::function::Function) -> Result<(), IrError> {
    let err = |msg: String| Err(IrError::new(format!("in @{}: {msg}", f.name)));
    if f.blocks.is_empty() {
        return err("function has no blocks".into());
    }
    if f.sig.args > 8 {
        return err("more than 8 register arguments".into());
    }
    let layout = PointLayout::of(f);
    let check_reg = |r: Reg| -> Result<(), IrError> {
        if r.is_virtual() {
            return Err(IrError::new(format!(
                "in @{}: virtual register {r:?} in machine program",
                f.name
            )));
        }
        if r.index() >= p.config.num_regs {
            return Err(IrError::new(format!(
                "in @{}: register {r:?} outside the {}-register file",
                f.name, p.config.num_regs
            )));
        }
        Ok(())
    };
    for pt in layout.iter() {
        let pi = layout.resolve(f, pt);
        if let Some(inst) = pi.as_inst() {
            for r in inst.reads().into_iter().chain(inst.writes()) {
                check_reg(r)?;
            }
            use crate::inst::AluOp;
            match inst {
                Inst::AluImm { op: AluOp::Sll | AluOp::Srl | AluOp::Sra, imm, .. }
                    if *imm < 0 || *imm >= p.config.xlen as i64 =>
                {
                    return err(format!("shift amount {imm} outside 0..{}", p.config.xlen));
                }
                Inst::Call { callee } if p.function(callee).is_none() => {
                    return err(format!("call to undefined function `@{callee}`"));
                }
                Inst::La { global, .. } if p.global_address(global).is_none() => {
                    return err(format!("`la` of undefined global `@{global}`"));
                }
                _ => {}
            }
        }
        if let Some(t) = pi.as_term() {
            for r in t.reads() {
                check_reg(r)?;
            }
            for s in t.successors() {
                if s.index() >= f.blocks.len() {
                    return err(format!("branch to out-of-range block {s:?}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::config::MachineConfig;
    use crate::function::Signature;

    #[test]
    fn accepts_valid_program() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 1);
        fb.exit();
        fb.finish();
        assert!(verify_program(&pb.finish()).is_ok());
    }

    #[test]
    fn rejects_missing_entry() {
        let pb = ProgramBuilder::new(MachineConfig::rv32());
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message().contains("entry function"));
    }

    #[test]
    fn rejects_virtual_registers() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::virt(0), 1);
        fb.exit();
        fb.finish();
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message().contains("virtual register"));
    }

    #[test]
    fn rejects_out_of_file_registers() {
        let mut pb = ProgramBuilder::new(MachineConfig::example4());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::phys(4), 1); // file has r0..r3
        fb.exit();
        fb.finish();
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message().contains("register file"));
    }

    #[test]
    fn rejects_oversized_shift() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.slli(Reg::T0, Reg::T0, 32);
        fb.exit();
        fb.finish();
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message().contains("shift amount"));
    }

    #[test]
    fn rejects_undefined_callee_and_global() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.call("ghost");
        fb.exit();
        fb.finish();
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message().contains("undefined function"));

        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.la(Reg::T0, "ghost");
        fb.exit();
        fb.finish();
        let e = verify_program(&pb.finish()).unwrap_err();
        assert!(e.message().contains("undefined global"));
    }
}
