//! Error type shared by the parser and verifier.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing or verifying IR.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IrError {
    message: String,
    /// 1-based source line for parse errors; `None` for verification errors.
    line: Option<usize>,
}

impl IrError {
    /// A verification error (no source location).
    pub fn new(message: impl Into<String>) -> IrError {
        IrError { message: message.into(), line: None }
    }

    /// A parse error at the given 1-based source line.
    pub fn at_line(line: usize, message: impl Into<String>) -> IrError {
        IrError { message: message.into(), line: Some(line) }
    }

    /// The error message without location.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The 1-based source line, if this is a parse error.
    pub fn line(&self) -> Option<usize> {
        self.line
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(l) => write!(f, "line {l}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_line_when_present() {
        assert_eq!(IrError::at_line(3, "bad register").to_string(), "line 3: bad register");
        assert_eq!(IrError::new("no entry").to_string(), "no entry");
    }
}
