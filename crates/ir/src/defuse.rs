//! Definition–use chains at (program point, register) granularity.
//!
//! Following §II of the paper:
//! * `def(p, v)` — the definitions of `v` that reach the read of `v` at `p`
//!   along some CFG path with no intervening redefinition.
//! * `use(p, v)` — for `v` *accessed* at `p`, the reads of `v` reachable from
//!   `p` along some path with no intervening redefinition. These are the
//!   observers of the fault-site window that opens after `p`.
//!
//! Data flow is not restricted to SSA: `|def(p, v)| > 1` is common after SSA
//! deconstruction.
//!
//! Representation: the per-register fixpoints run over dense bitsets of the
//! register's definition (resp. read) points — one or two `u64` words for
//! real functions — and the final chains live in flat CSR arrays indexed
//! arithmetically by `point_idx * num_regs + reg_idx`. No hashing, no
//! per-block set allocation, no re-resolving of instruction operands.

use crate::access::AccessTable;
use crate::cfg::Cfg;
use crate::function::Function;
use crate::point::{PointId, PointLayout};
use crate::program::Program;
use crate::reg::{Reg, RegMask};

/// Def–use chains of one function, in dense CSR storage.
#[derive(Clone, Debug)]
pub struct DefUse {
    nregs: u32,
    /// Per `(point, reg)`: `(offset, len)` into `def_data` (reads only).
    def_ranges: Vec<(u32, u32)>,
    /// Per `(point, reg)`: `(offset, len)` into `use_data` (accesses only).
    use_ranges: Vec<(u32, u32)>,
    def_data: Vec<PointId>,
    use_data: Vec<PointId>,
    /// Per-point read masks (minus the zero register): `is_read_site`.
    read_mask: Vec<RegMask>,
}

/// A tiny fixed-width bitset over `&mut [u64]` slices (the per-register
/// fixpoints own one contiguous buffer of `blocks × words`).
mod bits {
    pub fn insert(w: &mut [u64], i: usize) {
        w[i / 64] |= 1u64 << (i % 64);
    }
    pub fn clear(w: &mut [u64]) {
        w.fill(0);
    }
    pub fn union_into(dst: &mut [u64], src: &[u64]) {
        for (d, s) in dst.iter_mut().zip(src) {
            *d |= s;
        }
    }
    pub fn equals(a: &[u64], b: &[u64]) -> bool {
        a == b
    }
    pub fn iter_ones(w: &[u64]) -> impl Iterator<Item = usize> + '_ {
        w.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

impl DefUse {
    /// Computes def–use chains for `f`.
    ///
    /// The hardwired zero register carries no data flow and is skipped.
    pub fn compute(f: &Function, program: &Program) -> DefUse {
        let layout = PointLayout::of(f);
        let cfg = Cfg::of(f);
        let access = AccessTable::of(program, f, &layout);
        DefUse::compute_with(f, program, &layout, &cfg, &access)
    }

    /// [`DefUse::compute`] with the shared per-function context precomputed
    /// by the caller.
    pub fn compute_with(
        f: &Function,
        program: &Program,
        layout: &PointLayout,
        cfg: &Cfg,
        access: &AccessTable,
    ) -> DefUse {
        let nregs = program.config.num_regs.min(64);
        let zero = match program.config.zero_reg {
            Some(z) => RegMask::of(z),
            None => RegMask::empty(),
        };
        let np = layout.len();
        let mut du = DefUse {
            nregs,
            def_ranges: vec![(0, 0); np * nregs as usize],
            use_ranges: vec![(0, 0); np * nregs as usize],
            def_data: Vec::new(),
            use_data: Vec::new(),
            read_mask: (0..np)
                .map(|i| access.read_mask(PointId(i as u32)).difference(zero))
                .collect(),
        };
        for r in access.mentioned().difference(zero).iter() {
            du.chain_one_reg(f, layout, cfg, access, zero, r);
        }
        du
    }

    fn slot(&self, p: PointId, r: Reg) -> Option<usize> {
        (!r.is_virtual() && r.index() < self.nregs)
            .then(|| p.index() * self.nregs as usize + r.index() as usize)
    }

    fn chain_one_reg(
        &mut self,
        f: &Function,
        layout: &PointLayout,
        cfg: &Cfg,
        access: &AccessTable,
        zero: RegMask,
        r: Reg,
    ) {
        let nb = f.blocks.len();
        let reads = |p: PointId| access.read_mask(p).difference(zero).contains(r);
        let writes = |p: PointId| access.write_mask(p).contains(r);

        // Dense numbering of r's definition and read points.
        let mut def_points: Vec<PointId> = Vec::new();
        let mut read_points: Vec<PointId> = Vec::new();
        for p in layout.iter() {
            if writes(p) {
                def_points.push(p);
            }
            if reads(p) {
                read_points.push(p);
            }
        }
        let def_id = |p: PointId| def_points.binary_search(&p).expect("definition point");
        let read_id = |p: PointId| read_points.binary_search(&p).expect("read point");

        // --- Forward: reaching definitions of r. ---
        // Block transfer: a block with a definition exports exactly its last
        // def; a block without one passes the union of its predecessors.
        let dwords = def_points.len().div_ceil(64).max(1);
        let mut last_def: Vec<Option<usize>> = vec![None; nb];
        for (i, &d) in def_points.iter().enumerate() {
            last_def[layout.block_of(d).index()] = Some(i);
        }
        let mut block_out = vec![0u64; nb * dwords];
        let mut scratch = vec![0u64; dwords];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.reverse_postorder() {
                let bi = b.index();
                bits::clear(&mut scratch);
                if let Some(d) = last_def[bi] {
                    bits::insert(&mut scratch, d);
                } else {
                    for &pr in cfg.predecessors(b) {
                        let (lo, hi) = (pr.index() * dwords, (pr.index() + 1) * dwords);
                        // Split borrow: scratch is separate storage.
                        bits::union_into(&mut scratch, &block_out[lo..hi]);
                    }
                }
                let out = &mut block_out[bi * dwords..(bi + 1) * dwords];
                if !bits::equals(out, &scratch) {
                    out.copy_from_slice(&scratch);
                    changed = true;
                }
            }
        }
        // Local walk to answer def(p, r) per read.
        let mut cur = vec![0u64; dwords];
        for (bi, blk) in f.blocks.iter().enumerate() {
            let b = crate::function::BlockId(bi as u32);
            bits::clear(&mut cur);
            for &pr in cfg.predecessors(b) {
                bits::union_into(
                    &mut cur,
                    &block_out[pr.index() * dwords..(pr.index() + 1) * dwords],
                );
            }
            for off in 0..blk.point_count() {
                let p = layout.point(b, off);
                if reads(p) {
                    let start = self.def_data.len() as u32;
                    self.def_data.extend(bits::iter_ones(&cur).map(|i| def_points[i]));
                    let len = self.def_data.len() as u32 - start;
                    let slot = self.slot(p, r).expect("machine register");
                    self.def_ranges[slot] = (start, len);
                }
                if writes(p) {
                    bits::clear(&mut cur);
                    bits::insert(&mut cur, def_id(p));
                }
            }
        }

        // --- Backward: readers reachable without redefinition. ---
        let rwords = read_points.len().div_ceil(64).max(1);
        let mut block_in = vec![0u64; nb * rwords];
        let mut scratch = vec![0u64; rwords];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.postorder() {
                let bi = b.index();
                bits::clear(&mut scratch);
                for &s in cfg.successors(b) {
                    bits::union_into(
                        &mut scratch,
                        &block_in[s.index() * rwords..(s.index() + 1) * rwords],
                    );
                }
                let blk = f.block(b);
                for off in (0..blk.point_count()).rev() {
                    let p = layout.point(b, off);
                    if writes(p) {
                        bits::clear(&mut scratch);
                    }
                    if reads(p) {
                        bits::insert(&mut scratch, read_id(p));
                    }
                }
                let inb = &mut block_in[bi * rwords..(bi + 1) * rwords];
                if !bits::equals(inb, &scratch) {
                    inb.copy_from_slice(&scratch);
                    changed = true;
                }
            }
        }
        // Local walk to answer use(p, r) per access.
        let mut cur = vec![0u64; rwords];
        for (bi, blk) in f.blocks.iter().enumerate() {
            let b = crate::function::BlockId(bi as u32);
            bits::clear(&mut cur);
            for &s in cfg.successors(b) {
                bits::union_into(&mut cur, &block_in[s.index() * rwords..(s.index() + 1) * rwords]);
            }
            for off in (0..blk.point_count()).rev() {
                let p = layout.point(b, off);
                if reads(p) || writes(p) {
                    // use(p, r): readers *after* p — the state before this
                    // backward step.
                    let start = self.use_data.len() as u32;
                    self.use_data.extend(bits::iter_ones(&cur).map(|i| read_points[i]));
                    let len = self.use_data.len() as u32 - start;
                    let slot = self.slot(p, r).expect("machine register");
                    self.use_ranges[slot] = (start, len);
                }
                if writes(p) {
                    bits::clear(&mut cur);
                }
                if reads(p) {
                    bits::insert(&mut cur, read_id(p));
                }
            }
        }
    }

    /// `def(p, v)`: definitions reaching the read of `v` at `p`. An empty
    /// slice means the value flows in from outside the function (an
    /// argument or uninitialized register), which analyses treat as unknown.
    pub fn defs(&self, p: PointId, v: Reg) -> &[PointId] {
        match self.slot(p, v) {
            Some(s) => {
                let (start, len) = self.def_ranges[s];
                &self.def_data[start as usize..(start + len) as usize]
            }
            None => &[],
        }
    }

    /// `use(p, v)`: reads of `v` reachable from `p` (exclusive) without an
    /// intervening redefinition. Only meaningful when `v` is accessed at `p`.
    pub fn uses(&self, p: PointId, v: Reg) -> &[PointId] {
        match self.slot(p, v) {
            Some(s) => {
                let (start, len) = self.use_ranges[s];
                &self.use_data[start as usize..(start + len) as usize]
            }
            None => &[],
        }
    }

    /// Whether the pair `(p, v)` is a recorded read site.
    pub fn is_read_site(&self, p: PointId, v: Reg) -> bool {
        self.read_mask[p.index()].contains(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::config::MachineConfig;
    use crate::function::Signature;
    use crate::reg::Reg;

    /// The paper's Fig. 4 CFG shape: a φ-join followed by a fork.
    ///
    /// ```text
    /// p0: li   t0, 5        (a = ...)
    /// p1: j join            -- modelled as straight line: v := t0
    /// p2: mv   t1, t0       (v = phi)
    /// p3: andi t2, t1, 1    (m = andi v, 1)
    /// p4: beqz t2, even     (fork)
    /// even: p5: slli t3, t1, 3 ; exit
    /// odd:  p6: slli t3, t1, 2 ; exit
    /// ```
    fn fork_fn() -> Program {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 5);
        fb.mv(Reg::T1, Reg::T0);
        fb.andi(Reg::T2, Reg::T1, 1);
        fb.beqz(Reg::T2, "even", "odd");
        fb.block("even");
        fb.slli(Reg::phys(28), Reg::T1, 3);
        fb.print(Reg::phys(28));
        fb.exit();
        fb.block("odd");
        fb.slli(Reg::phys(28), Reg::T1, 2);
        fb.print(Reg::phys(28));
        fb.exit();
        fb.finish();
        pb.finish()
    }

    #[test]
    fn uses_cross_basic_blocks() {
        let p = fork_fn();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        // t1 written at p1 (mv), read at p3 (andi... wait p2) and both slli.
        // Points: p0 li, p1 mv, p2 andi, p3 beqz, p4 slli(even), p5 print,
        // p6 exit, p7 slli(odd), p8 print, p9 exit.
        let uses = du.uses(PointId(1), Reg::T1);
        assert_eq!(uses, &[PointId(2), PointId(4), PointId(7)]);
        // After its read at the andi, t1 still reaches both shifts.
        let uses = du.uses(PointId(2), Reg::T1);
        assert_eq!(uses, &[PointId(4), PointId(7)]);
    }

    #[test]
    fn defs_report_reaching_definitions() {
        let p = fork_fn();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        assert_eq!(du.defs(PointId(2), Reg::T1), &[PointId(1)]);
        assert_eq!(du.defs(PointId(1), Reg::T0), &[PointId(0)]);
        assert!(du.is_read_site(PointId(1), Reg::T0));
        assert!(!du.is_read_site(PointId(0), Reg::T0));
    }

    #[test]
    fn multiple_defs_reach_a_join() {
        // if/else defining t0 on both arms, joined read.
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T1, 3);
        fb.beqz(Reg::T1, "a", "b");
        fb.block("a");
        fb.li(Reg::T0, 1);
        fb.jump("join");
        fb.block("b");
        fb.li(Reg::T0, 2);
        fb.jump("join");
        fb.block("join");
        fb.print(Reg::T0);
        fb.exit();
        fb.finish();
        let p = pb.finish();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        // print is the read; both li's reach it.
        let layout = PointLayout::of(f);
        let print_pt = layout.block_first(f.block_by_label("join").unwrap());
        assert_eq!(du.defs(print_pt, Reg::T0).len(), 2);
    }

    #[test]
    fn loop_reads_see_defs_from_prior_iterations() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 7);
        fb.jump("loop");
        fb.block("loop");
        fb.addi(Reg::T0, Reg::T0, -1); // reads + writes t0
        fb.bnez(Reg::T0, "loop", "exit");
        fb.block("exit");
        fb.exit();
        fb.finish();
        let p = pb.finish();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        let layout = PointLayout::of(f);
        let addi = layout.block_first(f.block_by_label("loop").unwrap());
        // The addi's read sees the initial li and its own previous iteration.
        assert_eq!(du.defs(addi, Reg::T0).len(), 2);
        // The addi's window is observed by the branch and the next addi.
        assert_eq!(du.uses(addi, Reg::T0).len(), 2);
    }
}
