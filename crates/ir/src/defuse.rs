//! Definition–use chains at (program point, register) granularity.
//!
//! Following §II of the paper:
//! * `def(p, v)` — the definitions of `v` that reach the read of `v` at `p`
//!   along some CFG path with no intervening redefinition.
//! * `use(p, v)` — for `v` *accessed* at `p`, the reads of `v` reachable from
//!   `p` along some path with no intervening redefinition. These are the
//!   observers of the fault-site window that opens after `p`.
//!
//! Data flow is not restricted to SSA: `|def(p, v)| > 1` is common after SSA
//! deconstruction.

use crate::cfg::Cfg;
use crate::function::Function;
use crate::point::{PointId, PointLayout};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::{BTreeSet, HashMap};

/// Def–use chains of one function.
#[derive(Clone, Debug)]
pub struct DefUse {
    /// `def(p, v)` for every register `v` read at `p`.
    reaching: HashMap<(PointId, Reg), Vec<PointId>>,
    /// `use(p, v)` for every register `v` accessed (read or written) at `p`.
    users: HashMap<(PointId, Reg), Vec<PointId>>,
}

impl DefUse {
    /// Computes def–use chains for `f`.
    ///
    /// The hardwired zero register carries no data flow and is skipped.
    pub fn compute(f: &Function, program: &Program) -> DefUse {
        let layout = PointLayout::of(f);
        let cfg = Cfg::of(f);
        let zero = program.config.zero_reg;

        // Collect the registers that appear at all.
        let mut regs: BTreeSet<Reg> = BTreeSet::new();
        for p in layout.iter() {
            let pi = layout.resolve(f, p);
            regs.extend(pi.reads(program));
            regs.extend(pi.writes(program));
        }
        if let Some(z) = zero {
            regs.remove(&z);
        }

        let mut reaching = HashMap::new();
        let mut users = HashMap::new();
        for &r in &regs {
            Self::chain_one_reg(f, program, &layout, &cfg, r, &mut reaching, &mut users);
        }
        DefUse { reaching, users }
    }

    fn chain_one_reg(
        f: &Function,
        program: &Program,
        layout: &PointLayout,
        cfg: &Cfg,
        r: Reg,
        reaching: &mut HashMap<(PointId, Reg), Vec<PointId>>,
        users: &mut HashMap<(PointId, Reg), Vec<PointId>>,
    ) {
        let nb = f.blocks.len();

        // --- Forward: reaching definitions of r. ---
        // Block summaries: does the block define r, and what's the last def?
        let mut block_out: Vec<BTreeSet<PointId>> = vec![BTreeSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in cfg.reverse_postorder() {
                let mut defs: BTreeSet<PointId> = BTreeSet::new();
                for &pr in cfg.predecessors(b) {
                    defs.extend(block_out[pr.index()].iter().copied());
                }
                let blk = f.block(b);
                for off in 0..blk.point_count() {
                    let p = layout.point(b, off);
                    let pi = layout.resolve(f, p);
                    if pi.writes(program).contains(&r) {
                        defs.clear();
                        defs.insert(p);
                    }
                }
                if block_out[b.index()] != defs {
                    block_out[b.index()] = defs;
                    changed = true;
                }
            }
        }
        // Local walk to answer def(p, r) per read.
        for (bi, blk) in f.blocks.iter().enumerate() {
            let b = crate::function::BlockId(bi as u32);
            let mut defs: BTreeSet<PointId> = BTreeSet::new();
            for &pr in cfg.predecessors(b) {
                defs.extend(block_out[pr.index()].iter().copied());
            }
            for off in 0..blk.point_count() {
                let p = layout.point(b, off);
                let pi = layout.resolve(f, p);
                if pi.reads(program).contains(&r) {
                    reaching.insert((p, r), defs.iter().copied().collect());
                }
                if pi.writes(program).contains(&r) {
                    defs.clear();
                    defs.insert(p);
                }
            }
        }

        // --- Backward: readers reachable without redefinition. ---
        let mut block_in: Vec<BTreeSet<PointId>> = vec![BTreeSet::new(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.postorder() {
                let mut rd: BTreeSet<PointId> = BTreeSet::new();
                for &s in cfg.successors(b) {
                    rd.extend(block_in[s.index()].iter().copied());
                }
                let blk = f.block(b);
                for off in (0..blk.point_count()).rev() {
                    let p = layout.point(b, off);
                    let pi = layout.resolve(f, p);
                    if pi.writes(program).contains(&r) {
                        rd.clear();
                    }
                    if pi.reads(program).contains(&r) {
                        rd.insert(p);
                    }
                }
                if block_in[b.index()] != rd {
                    block_in[b.index()] = rd;
                    changed = true;
                }
            }
        }
        // Local walk to answer use(p, r) per access.
        for (bi, blk) in f.blocks.iter().enumerate() {
            let b = crate::function::BlockId(bi as u32);
            let mut rd: BTreeSet<PointId> = BTreeSet::new();
            for &s in cfg.successors(b) {
                rd.extend(block_in[s.index()].iter().copied());
            }
            for off in (0..blk.point_count()).rev() {
                let p = layout.point(b, off);
                let pi = layout.resolve(f, p);
                let accesses = pi.reads(program).contains(&r) || pi.writes(program).contains(&r);
                if accesses {
                    // use(p, r): readers *after* p — the state before this
                    // backward step.
                    users.insert((p, r), rd.iter().copied().collect());
                }
                if pi.writes(program).contains(&r) {
                    rd.clear();
                }
                if pi.reads(program).contains(&r) {
                    rd.insert(p);
                }
            }
        }
    }

    /// `def(p, v)`: definitions reaching the read of `v` at `p`. An empty
    /// slice means the value flows in from outside the function (an
    /// argument or uninitialized register), which analyses treat as unknown.
    pub fn defs(&self, p: PointId, v: Reg) -> &[PointId] {
        self.reaching.get(&(p, v)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// `use(p, v)`: reads of `v` reachable from `p` (exclusive) without an
    /// intervening redefinition. Only meaningful when `v` is accessed at `p`.
    pub fn uses(&self, p: PointId, v: Reg) -> &[PointId] {
        self.users.get(&(p, v)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether the pair `(p, v)` is a recorded read site.
    pub fn is_read_site(&self, p: PointId, v: Reg) -> bool {
        self.reaching.contains_key(&(p, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::config::MachineConfig;
    use crate::function::Signature;
    use crate::reg::Reg;

    /// The paper's Fig. 4 CFG shape: a φ-join followed by a fork.
    ///
    /// ```text
    /// p0: li   t0, 5        (a = ...)
    /// p1: j join            -- modelled as straight line: v := t0
    /// p2: mv   t1, t0       (v = phi)
    /// p3: andi t2, t1, 1    (m = andi v, 1)
    /// p4: beqz t2, even     (fork)
    /// even: p5: slli t3, t1, 3 ; exit
    /// odd:  p6: slli t3, t1, 2 ; exit
    /// ```
    fn fork_fn() -> Program {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 5);
        fb.mv(Reg::T1, Reg::T0);
        fb.andi(Reg::T2, Reg::T1, 1);
        fb.beqz(Reg::T2, "even", "odd");
        fb.block("even");
        fb.slli(Reg::phys(28), Reg::T1, 3);
        fb.print(Reg::phys(28));
        fb.exit();
        fb.block("odd");
        fb.slli(Reg::phys(28), Reg::T1, 2);
        fb.print(Reg::phys(28));
        fb.exit();
        fb.finish();
        pb.finish()
    }

    #[test]
    fn uses_cross_basic_blocks() {
        let p = fork_fn();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        // t1 written at p1 (mv), read at p3 (andi... wait p2) and both slli.
        // Points: p0 li, p1 mv, p2 andi, p3 beqz, p4 slli(even), p5 print,
        // p6 exit, p7 slli(odd), p8 print, p9 exit.
        let uses = du.uses(PointId(1), Reg::T1);
        assert_eq!(uses, &[PointId(2), PointId(4), PointId(7)]);
        // After its read at the andi, t1 still reaches both shifts.
        let uses = du.uses(PointId(2), Reg::T1);
        assert_eq!(uses, &[PointId(4), PointId(7)]);
    }

    #[test]
    fn defs_report_reaching_definitions() {
        let p = fork_fn();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        assert_eq!(du.defs(PointId(2), Reg::T1), &[PointId(1)]);
        assert_eq!(du.defs(PointId(1), Reg::T0), &[PointId(0)]);
        assert!(du.is_read_site(PointId(1), Reg::T0));
        assert!(!du.is_read_site(PointId(0), Reg::T0));
    }

    #[test]
    fn multiple_defs_reach_a_join() {
        // if/else defining t0 on both arms, joined read.
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T1, 3);
        fb.beqz(Reg::T1, "a", "b");
        fb.block("a");
        fb.li(Reg::T0, 1);
        fb.jump("join");
        fb.block("b");
        fb.li(Reg::T0, 2);
        fb.jump("join");
        fb.block("join");
        fb.print(Reg::T0);
        fb.exit();
        fb.finish();
        let p = pb.finish();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        // print is the read; both li's reach it.
        let layout = PointLayout::of(f);
        let print_pt = layout.block_first(f.block_by_label("join").unwrap());
        assert_eq!(du.defs(print_pt, Reg::T0).len(), 2);
    }

    #[test]
    fn loop_reads_see_defs_from_prior_iterations() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 7);
        fb.jump("loop");
        fb.block("loop");
        fb.addi(Reg::T0, Reg::T0, -1); // reads + writes t0
        fb.bnez(Reg::T0, "loop", "exit");
        fb.block("exit");
        fb.exit();
        fb.finish();
        let p = pb.finish();
        let f = p.entry_function();
        let du = DefUse::compute(f, &p);
        let layout = PointLayout::of(f);
        let addi = layout.block_first(f.block_by_label("loop").unwrap());
        // The addi's read sees the initial li and its own previous iteration.
        assert_eq!(du.defs(addi, Reg::T0).len(), 2);
        // The addi's window is observed by the branch and the next addi.
        assert_eq!(du.uses(addi, Reg::T0).len(), 2);
    }
}
