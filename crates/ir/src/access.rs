//! Precomputed per-point register accesses: the dense, allocation-free view
//! of `read(p)` / `write(p)` that every bit-level analysis iterates.
//!
//! [`crate::PointInst::reads`] and `writes` allocate a fresh `Vec` per call
//! (calls expand to their ABI effect sets), which is fine for one-off
//! queries but dominated the analysis hot loops — the fixpoint solvers ask
//! for the same sets thousands of times. [`AccessTable`] resolves them once
//! per function into flat CSR arrays plus per-point `u64` bitmasks, so the
//! solvers index arithmetically and never touch the instruction again.

use crate::point::{PointId, PointLayout};
use crate::program::Program;
use crate::reg::{Reg, RegMask};

/// Per-point read/write register lists (CSR layout, faithful to
/// [`crate::PointInst`] order including duplicates) and deduplicated
/// [`RegMask`] bitmasks, for one function.
///
/// Only machine programs are supported: every register must be physical
/// with an index below 64 (RV32 has 32 architectural registers; the
/// bitmask representation holds up to 64).
#[derive(Clone, Debug)]
pub struct AccessTable {
    read_off: Vec<u32>,
    read_regs: Vec<Reg>,
    write_off: Vec<u32>,
    write_regs: Vec<Reg>,
    read_mask: Vec<RegMask>,
    write_mask: Vec<RegMask>,
    /// Union of every point's access mask plus the signature's argument
    /// registers (the function's register universe).
    mentioned: RegMask,
}

impl AccessTable {
    /// Resolves every point of `f` once.
    ///
    /// # Panics
    ///
    /// Panics if the function mentions a virtual register or a register
    /// index ≥ 64 (bit-level analyses require a machine program with at
    /// most 64 architectural registers).
    pub fn of(
        program: &Program,
        f: &crate::function::Function,
        layout: &PointLayout,
    ) -> AccessTable {
        let n = layout.len();
        let mut t = AccessTable {
            read_off: Vec::with_capacity(n + 1),
            read_regs: Vec::new(),
            write_off: Vec::with_capacity(n + 1),
            write_regs: Vec::new(),
            read_mask: Vec::with_capacity(n),
            write_mask: Vec::with_capacity(n),
            mentioned: RegMask::empty(),
        };
        let check = |r: Reg| -> Reg {
            assert!(
                !r.is_virtual() && r.index() < 64,
                "bit-level analyses require physical registers below index 64, got {r}"
            );
            r
        };
        t.read_off.push(0);
        t.write_off.push(0);
        for p in layout.iter() {
            let pi = layout.resolve(f, p);
            let mut rm = RegMask::empty();
            for r in pi.reads(program) {
                rm.insert(check(r));
                t.read_regs.push(r);
            }
            let mut wm = RegMask::empty();
            for r in pi.writes(program) {
                wm.insert(check(r));
                t.write_regs.push(r);
            }
            t.read_off.push(t.read_regs.len() as u32);
            t.write_off.push(t.write_regs.len() as u32);
            t.read_mask.push(rm);
            t.write_mask.push(wm);
            t.mentioned = t.mentioned.union(rm).union(wm);
        }
        for r in f.sig.arg_regs() {
            t.mentioned.insert(check(r));
        }
        t
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        self.read_mask.len()
    }

    /// Whether the function has no points.
    pub fn is_empty(&self) -> bool {
        self.read_mask.is_empty()
    }

    /// Registers read at `p`, in instruction-operand order (may repeat).
    pub fn reads(&self, p: PointId) -> &[Reg] {
        let i = p.index();
        &self.read_regs[self.read_off[i] as usize..self.read_off[i + 1] as usize]
    }

    /// Registers written at `p`.
    pub fn writes(&self, p: PointId) -> &[Reg] {
        let i = p.index();
        &self.write_regs[self.write_off[i] as usize..self.write_off[i + 1] as usize]
    }

    /// Deduplicated mask of registers read at `p`.
    pub fn read_mask(&self, p: PointId) -> RegMask {
        self.read_mask[p.index()]
    }

    /// Deduplicated mask of registers written at `p`.
    pub fn write_mask(&self, p: PointId) -> RegMask {
        self.write_mask[p.index()]
    }

    /// Registers accessed (read or written) at `p`.
    pub fn access_mask(&self, p: PointId) -> RegMask {
        self.read_mask[p.index()].union(self.write_mask[p.index()])
    }

    /// Every register the function mentions (accesses anywhere, plus its
    /// signature's argument registers).
    pub fn mentioned(&self) -> RegMask {
        self.mentioned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_program;

    #[test]
    fn table_matches_point_inst_queries() {
        let p = parse_program(
            r#"
func @f(args=1, ret=a0) {
entry:
    slli a0, a0, 1
    ret a0
}
func @main(args=0, ret=none) {
entry:
    li a0, 3
    call @f
    add t0, a0, a0
    print t0
    exit
}
"#,
        )
        .unwrap();
        for f in &p.functions {
            let layout = PointLayout::of(f);
            let t = AccessTable::of(&p, f, &layout);
            for pt in layout.iter() {
                let pi = layout.resolve(f, pt);
                assert_eq!(t.reads(pt), pi.reads(&p).as_slice(), "{}:{pt}", f.name);
                assert_eq!(t.writes(pt), pi.writes(&p).as_slice(), "{}:{pt}", f.name);
                for r in pi.reads(&p) {
                    assert!(t.read_mask(pt).contains(r));
                }
                for r in pi.writes(&p) {
                    assert!(t.write_mask(pt).contains(r));
                }
            }
        }
    }

    #[test]
    fn duplicate_operands_are_kept_in_lists_once_in_masks() {
        let p = parse_program(
            "func @main(args=0, ret=none) {\nentry:\n    add t0, t1, t1\n    print t0\n    exit\n}\n",
        )
        .unwrap();
        let f = p.entry_function();
        let layout = PointLayout::of(f);
        let t = AccessTable::of(&p, f, &layout);
        assert_eq!(t.reads(PointId(0)), &[Reg::T1, Reg::T1]);
        assert_eq!(t.read_mask(PointId(0)).count(), 1);
        assert!(t.mentioned().contains(Reg::T0));
    }

    #[test]
    fn mentioned_includes_argument_registers() {
        let p = parse_program(
            "func @f(args=2, ret=none) {\nentry:\n    print a0\n    exit\n}\nfunc @main(args=0, ret=none) {\nentry:\n    exit\n}\n",
        )
        .unwrap();
        let f = p.function("f").unwrap();
        let layout = PointLayout::of(f);
        let t = AccessTable::of(&p, f, &layout);
        // a1 is an argument register even though no instruction touches it.
        assert!(t.mentioned().contains(Reg::A1));
    }
}
