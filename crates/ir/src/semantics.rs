//! Concrete evaluation of ALU operations, comparisons and branches.
//!
//! This is the single source of truth for instruction semantics: both the
//! simulator (`bec-sim`) and the abstract transfer functions' constant
//! folding (`bec-core`) call into it, so the abstract and the concrete
//! worlds cannot drift apart.
//!
//! RISC-V conventions are followed for the corner cases: division by zero
//! yields all-ones (`div`) / the dividend (`rem`); signed overflow of
//! `div`/`rem` (`MIN / -1`) yields `MIN` / `0`; shift amounts are masked to
//! the word width.

use crate::config::MachineConfig;
use crate::inst::{AluOp, Cond};

/// Evaluates `op a, b` on `xlen`-bit values. Inputs and outputs are
/// truncated to the machine word.
pub fn eval_alu(c: &MachineConfig, op: AluOp, a: u64, b: u64) -> u64 {
    let a = c.truncate(a);
    let b = c.truncate(b);
    let sa = c.sign_extend(a);
    let sb = c.sign_extend(b);
    let w = c.xlen;
    let r = match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Sll => a.checked_shl(c.shamt(b)).unwrap_or(0),
        AluOp::Srl => a.checked_shr(c.shamt(b)).unwrap_or(0),
        AluOp::Sra => (sa >> c.shamt(b)) as u64,
        AluOp::Slt => u64::from(sa < sb),
        AluOp::Sltu => u64::from(a < b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Mulh => {
            // Widen to 128-bit to capture the high word exactly.
            let p = (sa as i128) * (sb as i128);
            (p >> w) as u64
        }
        AluOp::Mulhu => {
            let p = (a as u128) * (b as u128);
            (p >> w) as u64
        }
        AluOp::Div => {
            if b == 0 {
                u64::MAX // all ones
            } else if sa == min_signed(w) && sb == -1 {
                a // overflow: MIN / -1 = MIN
            } else {
                (sa.wrapping_div(sb)) as u64
            }
        }
        AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
        AluOp::Rem => {
            if b == 0 {
                a
            } else if sa == min_signed(w) && sb == -1 {
                0
            } else {
                (sa.wrapping_rem(sb)) as u64
            }
        }
        AluOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    };
    c.truncate(r)
}

fn min_signed(width: u32) -> i64 {
    if width >= 64 {
        i64::MIN
    } else {
        -(1i64 << (width - 1))
    }
}

/// Evaluates a branch condition on `xlen`-bit values.
pub fn eval_cond(c: &MachineConfig, cond: Cond, a: u64, b: u64) -> bool {
    let a = c.truncate(a);
    let b = c.truncate(b);
    match cond {
        Cond::Eq => a == b,
        Cond::Ne => a != b,
        Cond::Lt => c.sign_extend(a) < c.sign_extend(b),
        Cond::Ge => c.sign_extend(a) >= c.sign_extend(b),
        Cond::Ltu => a < b,
        Cond::Geu => a >= b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn riscv_division_corner_cases() {
        let c = MachineConfig::rv32();
        assert_eq!(eval_alu(&c, AluOp::Div, 10, 0), 0xffff_ffff);
        assert_eq!(eval_alu(&c, AluOp::Rem, 10, 0), 10);
        let min = 0x8000_0000u64;
        let neg1 = 0xffff_ffffu64;
        assert_eq!(eval_alu(&c, AluOp::Div, min, neg1), min);
        assert_eq!(eval_alu(&c, AluOp::Rem, min, neg1), 0);
        assert_eq!(eval_alu(&c, AluOp::Divu, 7, 2), 3);
        assert_eq!(eval_alu(&c, AluOp::Remu, 7, 2), 1);
    }

    #[test]
    fn shifts_mask_amounts() {
        let c = MachineConfig::rv32();
        assert_eq!(eval_alu(&c, AluOp::Sll, 1, 33), 2);
        assert_eq!(eval_alu(&c, AluOp::Srl, 0x8000_0000, 31), 1);
        assert_eq!(eval_alu(&c, AluOp::Sra, 0x8000_0000, 31), 0xffff_ffff);
    }

    #[test]
    fn mulh_variants() {
        let c = MachineConfig::rv32();
        assert_eq!(eval_alu(&c, AluOp::Mulhu, 0xffff_ffff, 0xffff_ffff), 0xffff_fffe);
        // (-1) * (-1) = 1 → high word 0.
        assert_eq!(eval_alu(&c, AluOp::Mulh, 0xffff_ffff, 0xffff_ffff), 0);
        assert_eq!(eval_alu(&c, AluOp::Mul, 0x1_0001, 0x1_0001), (0x2_0001 & 0xffff_ffff));
    }

    #[test]
    fn small_width_semantics() {
        let c = MachineConfig::example4();
        assert_eq!(eval_alu(&c, AluOp::Add, 15, 1), 0);
        assert_eq!(eval_alu(&c, AluOp::Slt, 0b1000, 0), 1); // -8 < 0
        assert_eq!(eval_alu(&c, AluOp::Sltu, 0b1000, 0), 0);
        assert!(eval_cond(&c, Cond::Lt, 0b1111, 1)); // -1 < 1 signed
        assert!(!eval_cond(&c, Cond::Ltu, 0b1111, 1));
    }

    #[test]
    fn conditions() {
        let c = MachineConfig::rv32();
        assert!(eval_cond(&c, Cond::Eq, 5, 5));
        assert!(eval_cond(&c, Cond::Ne, 5, 6));
        assert!(eval_cond(&c, Cond::Ge, 5, 5));
        assert!(eval_cond(&c, Cond::Geu, 0xffff_ffff, 5));
        assert!(!eval_cond(&c, Cond::Ge, 0xffff_ffff, 5)); // -1 < 5 signed
    }
}
