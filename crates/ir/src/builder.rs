//! Programmatic construction of programs and functions.
//!
//! The builders are the ergonomic way to write IR in tests, examples and the
//! `bec-lang` code generator. Branch targets are symbolic labels resolved
//! when the function is finished.
//!
//! ```
//! use bec_ir::{MachineConfig, ProgramBuilder, Reg, Signature};
//!
//! let mut pb = ProgramBuilder::new(MachineConfig::rv32());
//! let mut fb = pb.function("main", Signature::void(0));
//! fb.block("entry");
//! fb.li(Reg::T0, 3);
//! fb.bnez(Reg::T0, "then", "else");
//! fb.block("then");
//! fb.print(Reg::T0);
//! fb.exit();
//! fb.block("else");
//! fb.exit();
//! fb.finish();
//! let program = pb.finish();
//! assert_eq!(program.entry_function().blocks.len(), 3);
//! ```

use crate::config::MachineConfig;
use crate::function::{Block, BlockId, Function, Signature, Terminator};
use crate::inst::{AluOp, Cond, Inst, MemWidth};
use crate::program::{Global, Program};
use crate::reg::Reg;
use std::collections::HashMap;

/// Builds a [`Program`] incrementally.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
}

impl ProgramBuilder {
    /// Starts a program for the given machine.
    pub fn new(config: MachineConfig) -> ProgramBuilder {
        ProgramBuilder { program: Program::new(config) }
    }

    /// Adds a global data object.
    pub fn global(&mut self, g: Global) -> &mut Self {
        self.program.globals.push(g);
        self
    }

    /// Sets the entry function name (defaults to `main`).
    pub fn entry(&mut self, name: impl Into<String>) -> &mut Self {
        self.program.entry = name.into();
        self
    }

    /// Starts building a function. Finish it with
    /// [`FunctionBuilder::finish`] before starting another.
    pub fn function(&mut self, name: impl Into<String>, sig: Signature) -> FunctionBuilder<'_> {
        FunctionBuilder { pb: self, name: name.into(), sig, blocks: Vec::new(), current: None }
    }

    /// Consumes the builder, returning the program.
    pub fn finish(self) -> Program {
        self.program
    }
}

/// A terminator template with unresolved label targets.
#[derive(Clone, Debug)]
enum TermSpec {
    Jump(String),
    Branch { cond: Cond, rs1: Reg, rs2: Option<Reg>, taken: String, fallthrough: String },
    Ret(Vec<Reg>),
    Exit,
}

/// Builds one [`Function`]; obtained from [`ProgramBuilder::function`].
#[derive(Debug)]
pub struct FunctionBuilder<'a> {
    pb: &'a mut ProgramBuilder,
    name: String,
    sig: Signature,
    blocks: Vec<(String, Vec<Inst>, Option<TermSpec>)>,
    current: Option<usize>,
}

impl<'a> FunctionBuilder<'a> {
    /// Opens a new basic block with the given label and makes it current.
    ///
    /// # Panics
    ///
    /// Panics if the previous block was left without a terminator, or if the
    /// label is reused.
    pub fn block(&mut self, label: impl Into<String>) -> &mut Self {
        let label = label.into();
        if let Some(cur) = self.current {
            assert!(
                self.blocks[cur].2.is_some(),
                "block `{}` has no terminator before starting `{label}`",
                self.blocks[cur].0
            );
        }
        assert!(self.blocks.iter().all(|(l, ..)| *l != label), "duplicate block label `{label}`");
        self.blocks.push((label, Vec::new(), None));
        self.current = Some(self.blocks.len() - 1);
        self
    }

    /// Appends a raw instruction to the current block.
    ///
    /// # Panics
    ///
    /// Panics if no block is open or the current block is already terminated.
    pub fn inst(&mut self, i: Inst) -> &mut Self {
        let cur = self.current.expect("no open block; call block() first");
        assert!(self.blocks[cur].2.is_none(), "block already terminated");
        self.blocks[cur].1.push(i);
        self
    }

    fn term(&mut self, t: TermSpec) {
        let cur = self.current.expect("no open block; call block() first");
        assert!(self.blocks[cur].2.is_none(), "block already terminated");
        self.blocks[cur].2 = Some(t);
    }

    // --- ALU helpers -----------------------------------------------------

    /// `op rd, rs1, rs2`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// `op rd, rs1, imm`.
    pub fn alu_imm(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::AluImm { op, rd, rs1, imm })
    }

    /// `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::Li { rd, imm })
    }

    /// `la rd, @global`.
    pub fn la(&mut self, rd: Reg, global: impl Into<String>) -> &mut Self {
        self.inst(Inst::La { rd, global: global.into() })
    }

    /// `mv rd, rs`.
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.inst(Inst::Mv { rd, rs })
    }

    /// `neg rd, rs`.
    pub fn neg(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.inst(Inst::Neg { rd, rs })
    }

    /// `seqz rd, rs`.
    pub fn seqz(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.inst(Inst::Seqz { rd, rs })
    }

    /// `snez rd, rs`.
    pub fn snez(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.inst(Inst::Snez { rd, rs })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// `sub rd, rs1, rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Sub, rd, rs1, rs2)
    }

    /// `and rd, rs1, rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::And, rd, rs1, rs2)
    }

    /// `or rd, rs1, rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Or, rd, rs1, rs2)
    }

    /// `xor rd, rs1, rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Xor, rd, rs1, rs2)
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Add, rd, rs1, imm)
    }

    /// `andi rd, rs1, imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::And, rd, rs1, imm)
    }

    /// `ori rd, rs1, imm`.
    pub fn ori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Or, rd, rs1, imm)
    }

    /// `xori rd, rs1, imm`.
    pub fn xori(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Xor, rd, rs1, imm)
    }

    /// `slli rd, rs1, imm`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Sll, rd, rs1, imm)
    }

    /// `srli rd, rs1, imm`.
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Srl, rd, rs1, imm)
    }

    /// `srai rd, rs1, imm`.
    pub fn srai(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Sra, rd, rs1, imm)
    }

    /// `slti rd, rs1, imm`.
    pub fn slti(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Slt, rd, rs1, imm)
    }

    /// `sltiu rd, rs1, imm`.
    pub fn sltiu(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alu_imm(AluOp::Sltu, rd, rs1, imm)
    }

    // --- Memory ----------------------------------------------------------

    /// `lw rd, offset(base)`.
    pub fn lw(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.inst(Inst::Load { rd, base, offset, width: MemWidth::Word, signed: true })
    }

    /// `sw rs, offset(base)`.
    pub fn sw(&mut self, rs: Reg, base: Reg, offset: i64) -> &mut Self {
        self.inst(Inst::Store { rs, base, offset, width: MemWidth::Word })
    }

    /// `lbu rd, offset(base)`.
    pub fn lbu(&mut self, rd: Reg, base: Reg, offset: i64) -> &mut Self {
        self.inst(Inst::Load { rd, base, offset, width: MemWidth::Byte, signed: false })
    }

    /// `sb rs, offset(base)`.
    pub fn sb(&mut self, rs: Reg, base: Reg, offset: i64) -> &mut Self {
        self.inst(Inst::Store { rs, base, offset, width: MemWidth::Byte })
    }

    // --- Other -----------------------------------------------------------

    /// `call @callee`.
    pub fn call(&mut self, callee: impl Into<String>) -> &mut Self {
        self.inst(Inst::Call { callee: callee.into() })
    }

    /// `print rs` (observable output).
    pub fn print(&mut self, rs: Reg) -> &mut Self {
        self.inst(Inst::Print { rs })
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::Nop)
    }

    // --- Terminators -----------------------------------------------------

    /// `j label`.
    pub fn jump(&mut self, target: impl Into<String>) {
        self.term(TermSpec::Jump(target.into()));
    }

    /// Two-register conditional branch.
    pub fn branch(
        &mut self,
        cond: Cond,
        rs1: Reg,
        rs2: Reg,
        taken: impl Into<String>,
        fallthrough: impl Into<String>,
    ) {
        self.term(TermSpec::Branch {
            cond,
            rs1,
            rs2: Some(rs2),
            taken: taken.into(),
            fallthrough: fallthrough.into(),
        });
    }

    /// Compare-with-zero conditional branch.
    pub fn branch_zero(
        &mut self,
        cond: Cond,
        rs1: Reg,
        taken: impl Into<String>,
        fallthrough: impl Into<String>,
    ) {
        self.term(TermSpec::Branch {
            cond,
            rs1,
            rs2: None,
            taken: taken.into(),
            fallthrough: fallthrough.into(),
        });
    }

    /// `beqz rs, taken, fallthrough`.
    pub fn beqz(&mut self, rs: Reg, taken: impl Into<String>, fallthrough: impl Into<String>) {
        self.branch_zero(Cond::Eq, rs, taken, fallthrough);
    }

    /// `bnez rs, taken, fallthrough`.
    pub fn bnez(&mut self, rs: Reg, taken: impl Into<String>, fallthrough: impl Into<String>) {
        self.branch_zero(Cond::Ne, rs, taken, fallthrough);
    }

    /// `ret` reading the given registers (ABI return registers).
    pub fn ret(&mut self, reads: Vec<Reg>) {
        self.term(TermSpec::Ret(reads));
    }

    /// `exit` (program halt).
    pub fn exit(&mut self) {
        self.term(TermSpec::Exit);
    }

    /// Resolves labels and appends the function to the program.
    ///
    /// # Panics
    ///
    /// Panics on unresolved labels or unterminated blocks.
    pub fn finish(self) {
        let mut label_ids: HashMap<String, BlockId> = HashMap::new();
        for (i, (label, ..)) in self.blocks.iter().enumerate() {
            label_ids.insert(label.clone(), BlockId(i as u32));
        }
        let resolve = |l: &str| -> BlockId {
            *label_ids
                .get(l)
                .unwrap_or_else(|| panic!("unresolved label `{l}` in function `{}`", self.name))
        };
        let mut f = Function::new(self.name.clone(), self.sig);
        for (label, insts, term) in self.blocks {
            let term = term.unwrap_or_else(|| panic!("block `{label}` has no terminator"));
            let term = match term {
                TermSpec::Jump(t) => Terminator::Jump { target: resolve(&t) },
                TermSpec::Branch { cond, rs1, rs2, taken, fallthrough } => Terminator::Branch {
                    cond,
                    rs1,
                    rs2,
                    taken: resolve(&taken),
                    fallthrough: resolve(&fallthrough),
                },
                TermSpec::Ret(reads) => Terminator::Ret { reads },
                TermSpec::Exit => Terminator::Exit,
            };
            f.blocks.push(Block { label, insts, term });
        }
        self.pb.program.functions.push(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_loop_with_labels() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 7);
        fb.jump("loop");
        fb.block("loop");
        fb.addi(Reg::T0, Reg::T0, -1);
        fb.bnez(Reg::T0, "loop", "exit");
        fb.block("exit");
        fb.exit();
        fb.finish();
        let p = pb.finish();
        let f = p.entry_function();
        assert_eq!(f.blocks.len(), 3);
        match &f.block(BlockId(1)).term {
            Terminator::Branch { taken, fallthrough, .. } => {
                assert_eq!(*taken, BlockId(1));
                assert_eq!(*fallthrough, BlockId(2));
            }
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "unresolved label")]
    fn unresolved_label_panics() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.jump("nowhere");
        fb.finish();
    }

    #[test]
    #[should_panic(expected = "no terminator")]
    fn missing_terminator_panics() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.nop();
        fb.finish();
    }

    #[test]
    #[should_panic(expected = "duplicate block label")]
    fn duplicate_label_panics() {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", Signature::void(0));
        fb.block("entry");
        fb.exit();
        fb.block("entry");
    }
}
