//! Textual assembly printer (the inverse of [`crate::parser`]).

use crate::function::{Function, Terminator};
use crate::program::Program;

/// Renders a program as parseable assembly text.
///
/// `parse_program(&print_program(&p))` reproduces `p` up to global
/// initializer padding (property-tested in the crate's test suite).
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    let c = &p.config;
    let zero = match c.zero_reg {
        Some(r) => format!("x{}", r.index()),
        None => "none".to_owned(),
    };
    out.push_str(&format!("machine xlen={} regs={} zero={}\n", c.xlen, c.num_regs, zero));
    for g in &p.globals {
        if g.size % 4 == 0 && g.init.len() % 4 == 0 && !g.init.is_empty() {
            let words: Vec<String> = g
                .init
                .chunks(4)
                .map(|ch| u32::from_le_bytes([ch[0], ch[1], ch[2], ch[3]]).to_string())
                .collect();
            out.push_str(&format!(
                "global {}: word[{}] = {{ {} }}\n",
                g.name,
                g.size / 4,
                words.join(", ")
            ));
        } else if g.init.is_empty() {
            out.push_str(&format!("global {}: byte[{}]\n", g.name, g.size));
        } else {
            let bytes: Vec<String> = g.init.iter().map(|b| b.to_string()).collect();
            out.push_str(&format!(
                "global {}: byte[{}] = {{ {} }}\n",
                g.name,
                g.size,
                bytes.join(", ")
            ));
        }
    }
    if p.entry != "main" {
        out.push_str(&format!("entry @{}\n", p.entry));
    }
    for f in &p.functions {
        out.push('\n');
        print_function(&mut out, f);
    }
    out
}

fn print_function(out: &mut String, f: &Function) {
    let ret = if f.sig.has_ret { "a0" } else { "none" };
    out.push_str(&format!("func @{}(args={}, ret={}) {{\n", f.name, f.sig.args, ret));
    for b in &f.blocks {
        out.push_str(&format!("{}:\n", b.label));
        for i in &b.insts {
            out.push_str(&format!("    {i}\n"));
        }
        let term = match &b.term {
            Terminator::Jump { target } => format!("j {}", f.blocks[target.index()].label),
            Terminator::Branch { cond, rs1, rs2, taken, fallthrough } => {
                let taken = &f.blocks[taken.index()].label;
                let fall = &f.blocks[fallthrough.index()].label;
                match rs2 {
                    Some(rs2) => {
                        format!("{} {rs1}, {rs2}, {taken}, {fall}", cond.mnemonic())
                    }
                    None => format!("{}z {rs1}, {taken}, {fall}", cond.mnemonic()),
                }
            }
            Terminator::Ret { reads } => {
                if reads.is_empty() {
                    "ret".to_owned()
                } else {
                    let regs: Vec<String> = reads.iter().map(|r| r.to_string()).collect();
                    format!("ret {}", regs.join(", "))
                }
            }
            Terminator::Exit => "exit".to_owned(),
        };
        out.push_str(&format!("    {term}\n"));
    }
    out.push_str("}\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn print_parse_roundtrip() {
        let src = r#"
machine xlen=32 regs=32 zero=x0
global tbl: word[2] = { 7, 9 }
func @helper(args=1, ret=a0) {
entry:
    slli a0, a0, 1
    ret a0
}
func @main(args=0, ret=none) {
entry:
    la   t0, @tbl
    lw   a0, 0(t0)
    call @helper
    print a0
    li   t1, 3
    bne  a0, t1, fail, ok
ok:
    exit
fail:
    exit
}
entry @main
"#;
        let p1 = parse_program(src).unwrap();
        let text = print_program(&p1);
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p1, p2, "printed program:\n{text}");
    }

    #[test]
    fn zero_branch_prints_z_form() {
        let src = "func @main(args=0, ret=none) {\nentry:\n    beqz t0, a, b\na:\n    exit\nb:\n    exit\n}\n";
        let p = parse_program(src).unwrap();
        let text = print_program(&p);
        assert!(text.contains("beqz t0, a, b"), "{text}");
    }
}
