//! Program points: a dense numbering of every instruction and terminator.
//!
//! The paper's fault space is `F = P × V` where `P` is the set of program
//! points. This module provides the dense `PointId` numbering per function
//! and a uniform view (`PointInst`) over instructions and terminators.

use crate::function::{BlockId, Function, Terminator};
use crate::inst::Inst;
use crate::program::Program;
use crate::reg::Reg;
use std::fmt;

/// Dense index of a program point within one function.
///
/// Points are numbered in block order: for each block, its instructions in
/// order, then its terminator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PointId(pub u32);

impl PointId {
    /// The numeric index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A uniform shared view of the entity at a program point.
#[derive(Clone, Copy, Debug)]
pub enum PointInst<'a> {
    /// An ordinary instruction.
    Inst(&'a Inst),
    /// A block terminator.
    Term(&'a Terminator),
}

impl<'a> PointInst<'a> {
    /// Registers read at this point. Calls report the callee's argument
    /// registers plus the callee-saved registers the callee spills (see
    /// [`Program::call_effects`]).
    pub fn reads(&self, program: &Program) -> Vec<Reg> {
        match self {
            PointInst::Inst(Inst::Call { callee }) => program.call_effects(callee).reads,
            PointInst::Inst(i) => i.reads(),
            PointInst::Term(t) => t.reads(),
        }
    }

    /// Registers written at this point. Calls report the ABI-level effects:
    /// `ra`, the return-value register when the callee returns one, and all
    /// caller-saved registers (clobbered with unknown values).
    pub fn writes(&self, program: &Program) -> Vec<Reg> {
        match self {
            PointInst::Inst(Inst::Call { callee }) => program.call_effects(callee).writes,
            PointInst::Inst(i) => i.writes(),
            PointInst::Term(_) => vec![],
        }
    }

    /// The underlying instruction, if this point is not a terminator.
    pub fn as_inst(&self) -> Option<&'a Inst> {
        match self {
            PointInst::Inst(i) => Some(i),
            PointInst::Term(_) => None,
        }
    }

    /// The underlying terminator, if any.
    pub fn as_term(&self) -> Option<&'a Terminator> {
        match self {
            PointInst::Term(t) => Some(t),
            PointInst::Inst(_) => None,
        }
    }
}

/// Precomputed mapping between [`PointId`]s and block/instruction positions.
#[derive(Clone, Debug)]
pub struct PointLayout {
    /// First point id of each block.
    block_start: Vec<u32>,
    /// For each point: its owning block.
    owner: Vec<BlockId>,
    total: usize,
}

impl PointLayout {
    /// Computes the layout of `f`.
    pub fn of(f: &Function) -> PointLayout {
        let mut block_start = Vec::with_capacity(f.blocks.len());
        let mut owner = Vec::with_capacity(f.point_count());
        let mut next = 0u32;
        for (bi, b) in f.blocks.iter().enumerate() {
            block_start.push(next);
            for _ in 0..b.point_count() {
                owner.push(BlockId(bi as u32));
                next += 1;
            }
        }
        PointLayout { block_start, owner, total: next as usize }
    }

    /// Total number of points.
    pub fn len(&self) -> usize {
        self.total
    }

    /// Whether the function has no points (no blocks).
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Iterates over all point ids in block order.
    pub fn iter(&self) -> impl Iterator<Item = PointId> {
        (0..self.total as u32).map(PointId)
    }

    /// The block containing `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn block_of(&self, p: PointId) -> BlockId {
        self.owner[p.index()]
    }

    /// The position of `p` within its block (`insts.len()` for the
    /// terminator).
    pub fn offset_in_block(&self, p: PointId) -> usize {
        let b = self.block_of(p);
        p.index() - self.block_start[b.index()] as usize
    }

    /// The point id of the `offset`-th point of `block`.
    pub fn point(&self, block: BlockId, offset: usize) -> PointId {
        PointId(self.block_start[block.index()] + offset as u32)
    }

    /// The point id of `block`'s terminator.
    pub fn terminator_of(&self, f: &Function, block: BlockId) -> PointId {
        self.point(block, f.block(block).insts.len())
    }

    /// First point of `block`.
    pub fn block_first(&self, block: BlockId) -> PointId {
        PointId(self.block_start[block.index()])
    }

    /// Resolves a point to its instruction-or-terminator view.
    pub fn resolve<'f>(&self, f: &'f Function, p: PointId) -> PointInst<'f> {
        let b = self.block_of(p);
        let off = self.offset_in_block(p);
        let blk = f.block(b);
        if off < blk.insts.len() {
            PointInst::Inst(&blk.insts[off])
        } else {
            PointInst::Term(&blk.term)
        }
    }

    /// Whether `p` is a terminator point.
    pub fn is_terminator(&self, f: &Function, p: PointId) -> bool {
        self.offset_in_block(p) == f.block(self.block_of(p)).insts.len()
    }

    /// The points of `block`, in order.
    pub fn block_points(&self, block: BlockId) -> impl Iterator<Item = PointId> {
        let start = self.block_start[block.index()];
        let end = self.block_start.get(block.index() + 1).copied().unwrap_or(self.total as u32);
        (start..end).map(PointId)
    }

    /// Visit priority of every point for a forward dataflow: the rank of the
    /// point when blocks are taken in the CFG's reverse postorder and points
    /// within a block in program order. Lower rank = visit earlier; a
    /// priority worklist keyed on these ranks converges in near-minimal
    /// passes on reducible CFGs.
    pub fn rpo_ranks(&self, cfg: &crate::cfg::Cfg) -> Vec<u32> {
        let mut rank = vec![0u32; self.total];
        let mut next = 0u32;
        for &b in cfg.reverse_postorder() {
            for p in self.block_points(b) {
                rank[p.index()] = next;
                next += 1;
            }
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Block, Signature};
    use crate::inst::Inst;

    fn two_block_fn() -> Function {
        let mut f = Function::new("f", Signature::void(0));
        let mut b0 = Block::new("entry");
        b0.insts.push(Inst::Nop);
        b0.insts.push(Inst::Nop);
        b0.term = Terminator::Jump { target: BlockId(1) };
        f.blocks.push(b0);
        let b1 = Block::new("exit");
        f.blocks.push(b1);
        f
    }

    #[test]
    fn layout_numbers_points_densely() {
        let f = two_block_fn();
        let l = PointLayout::of(&f);
        assert_eq!(l.len(), 4);
        assert_eq!(l.block_of(PointId(0)), BlockId(0));
        assert_eq!(l.block_of(PointId(2)), BlockId(0)); // terminator of entry
        assert_eq!(l.block_of(PointId(3)), BlockId(1));
        assert_eq!(l.terminator_of(&f, BlockId(0)), PointId(2));
        assert_eq!(l.block_first(BlockId(1)), PointId(3));
    }

    #[test]
    fn resolve_distinguishes_terminators() {
        let f = two_block_fn();
        let l = PointLayout::of(&f);
        assert!(l.resolve(&f, PointId(0)).as_inst().is_some());
        assert!(l.resolve(&f, PointId(2)).as_term().is_some());
        assert!(l.is_terminator(&f, PointId(2)));
        assert!(!l.is_terminator(&f, PointId(1)));
    }
}
