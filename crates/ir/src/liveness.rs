//! Per-point register liveness (backward dataflow) over [`RegMask`] words.
//!
//! Liveness drives the paper's `kill(p)` sets: a register accessed at `p`
//! but not live after `p` is killed there, and any fault arising in it after
//! `p` is masked (Algorithm 2, lines 4–5).
//!
//! At a `ret` of a non-entry function, the ABI-preserved registers — `ra`
//! (consumed by the return itself) and the callee-saved set including `sp`
//! — are live-out: [`Program::call_effects`] models calls as *not*
//! clobbering them, so the caller's analysis assumes their values survive
//! the call, and a masking claim on (say) the epilogue's final `sp`
//! adjustment would be refuted by fault injection (the caller's next stack
//! access crashes). The entry function has no caller, so nothing outlives
//! its `ret`/`exit`.
//!
//! Every per-point set is one [`RegMask`] (`u64`): transfer through a point
//! is two mask operations, block joins are single-word ors, and the whole
//! `live_after` table is a flat `Vec<RegMask>` indexed by point — no heap
//! bitsets, no hashing.

use crate::access::AccessTable;
use crate::cfg::Cfg;
use crate::function::Function;
use crate::point::{PointId, PointLayout};
use crate::program::Program;
use crate::reg::{Reg, RegMask};

/// Liveness analysis results for one function: one [`RegMask`] per point.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Registers live immediately after each point.
    live_after: Vec<RegMask>,
}

impl Liveness {
    /// Computes per-point liveness for `f`.
    ///
    /// The hardwired zero register is never considered live. Function return
    /// registers are live at `ret` points (they are listed in the
    /// terminator's read set).
    pub fn compute(f: &Function, program: &Program) -> Liveness {
        let layout = PointLayout::of(f);
        let cfg = Cfg::of(f);
        let access = AccessTable::of(program, f, &layout);
        Liveness::compute_with(f, program, &layout, &cfg, &access)
    }

    /// [`Liveness::compute`] with the shared per-function context
    /// precomputed by the caller (the analysis orchestrator resolves the
    /// layout, CFG and access table once and feeds every analysis).
    pub fn compute_with(
        f: &Function,
        program: &Program,
        layout: &PointLayout,
        cfg: &Cfg,
        access: &AccessTable,
    ) -> Liveness {
        let zero = match program.config.zero_reg {
            Some(z) => RegMask::of(z),
            None => RegMask::empty(),
        };
        let read = |p: PointId| access.read_mask(p).difference(zero);
        let write = |p: PointId| access.write_mask(p).difference(zero);

        // Registers live out of a `ret` (see module docs): the ABI-preserved
        // subset of the registers the function mentions, plus the return
        // terminator's own reads. Empty for the entry function, which
        // nothing returns into.
        let mut ret_seed = RegMask::empty();
        if f.name != program.entry {
            for r in access.mentioned().iter() {
                if r == Reg::RA || r.is_callee_saved() {
                    ret_seed.insert(r);
                }
            }
            ret_seed = ret_seed.difference(zero);
        }
        let exit_seed = |b: crate::function::BlockId| -> RegMask {
            if f.name == program.entry {
                return RegMask::empty();
            }
            match &f.block(b).term {
                crate::inst::TerminatorKind::Ret { reads } => {
                    let mut seed = ret_seed;
                    for &r in reads {
                        seed.insert(r);
                    }
                    seed.difference(zero)
                }
                _ => RegMask::empty(),
            }
        };

        // Block-level fixpoint on live-in masks.
        let nb = f.blocks.len();
        let mut block_live_in = vec![RegMask::empty(); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.postorder() {
                // live at block end = union of successors' live-in.
                let mut live = exit_seed(b);
                for &s in cfg.successors(b) {
                    live.union_with(block_live_in[s.index()]);
                }
                // Walk points backward: live' = (live \ write) ∪ read.
                let blk = f.block(b);
                for off in (0..blk.point_count()).rev() {
                    let p = layout.point(b, off);
                    live = live.difference(write(p)).union(read(p));
                }
                if block_live_in[b.index()] != live {
                    block_live_in[b.index()] = live;
                    changed = true;
                }
            }
        }

        // Final pass: record live-after per point.
        let mut live_after = vec![RegMask::empty(); layout.len()];
        for (bi, blk) in f.blocks.iter().enumerate() {
            let b = crate::function::BlockId(bi as u32);
            let mut live = exit_seed(b);
            for &s in cfg.successors(b) {
                live.union_with(block_live_in[s.index()]);
            }
            for off in (0..blk.point_count()).rev() {
                let p = layout.point(b, off);
                live_after[p.index()] = live;
                live = live.difference(write(p)).union(read(p));
            }
        }

        Liveness { live_after }
    }

    /// Whether `r` is live immediately after point `p`.
    pub fn is_live_after(&self, p: PointId, r: Reg) -> bool {
        self.live_after[p.index()].contains(r)
    }

    /// The registers live immediately after `p`, as a mask.
    pub fn live_after_mask(&self, p: PointId) -> RegMask {
        self.live_after[p.index()]
    }

    /// The registers live immediately after `p`, in ascending index order.
    pub fn live_after(&self, p: PointId) -> impl Iterator<Item = Reg> + '_ {
        self.live_after[p.index()].iter()
    }

    /// Number of registers live after `p`.
    pub fn live_after_count(&self, p: PointId) -> usize {
        self.live_after[p.index()].count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::config::MachineConfig;
    use crate::reg::Reg;

    /// li t0, 1 ; li t1, 2 ; add t0, t0, t1 ; print t0 ; exit
    fn straightline() -> Program {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", crate::function::Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 1);
        fb.li(Reg::T1, 2);
        fb.add(Reg::T0, Reg::T0, Reg::T1);
        fb.print(Reg::T0);
        fb.exit();
        fb.finish();
        pb.finish()
    }

    #[test]
    fn straightline_liveness() {
        let p = straightline();
        let f = p.entry_function();
        let lv = Liveness::compute(f, &p);
        // After p0 (li t0,1): t0 live, t1 not yet.
        assert!(lv.is_live_after(PointId(0), Reg::T0));
        assert!(!lv.is_live_after(PointId(0), Reg::T1));
        // After p1: both live.
        assert!(lv.is_live_after(PointId(1), Reg::T0));
        assert!(lv.is_live_after(PointId(1), Reg::T1));
        // After the add, t1 is dead (killed by its last read).
        assert!(lv.is_live_after(PointId(2), Reg::T0));
        assert!(!lv.is_live_after(PointId(2), Reg::T1));
        // After print, nothing is live.
        assert_eq!(lv.live_after_count(PointId(3)), 0);
        assert!(lv.live_after_mask(PointId(3)).is_empty());
    }

    #[test]
    fn loop_carried_liveness() {
        // t0 is an induction variable: live throughout the loop.
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", crate::function::Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 7);
        fb.jump("loop");
        fb.block("loop");
        fb.addi(Reg::T0, Reg::T0, -1);
        fb.bnez(Reg::T0, "loop", "exit");
        fb.block("exit");
        fb.exit();
        fb.finish();
        let p = pb.finish();
        let f = p.entry_function();
        let lv = Liveness::compute(f, &p);
        // After the backedge branch (p3), t0 is live on the loop path.
        let layout = PointLayout::of(f);
        let branch = layout.terminator_of(f, f.block_by_label("loop").unwrap());
        assert!(lv.is_live_after(branch, Reg::T0));
    }

    #[test]
    fn abi_preserved_regs_live_out_of_callee_ret() {
        let p = crate::parse_program(
            r#"
func @leaf(args=1, ret=a0) {
entry:
    addi sp, sp, -16
    slli a0, a0, 1
    addi sp, sp, 16
    ret a0
}
func @main(args=0, ret=none) {
entry:
    li a0, 3
    call @leaf
    print a0
    exit
}
"#,
        )
        .unwrap();
        let f = p.function("leaf").unwrap();
        let lv = Liveness::compute(f, &p);
        // The caller assumes the call preserves sp: the epilogue restore at
        // p2 must leave sp live, or a fault there would be claimed masked.
        assert!(lv.is_live_after(PointId(2), Reg::SP));
        // The return value crosses back into the caller: live out of `ret`.
        let layout = PointLayout::of(f);
        let ret = layout.terminator_of(f, f.block_by_label("entry").unwrap());
        assert!(lv.is_live_after(ret, Reg::A0));
        // `ra` is not mentioned by the leaf, so it has no fault sites and
        // stays outside the universe — no claim is made about it.
        assert!(!lv.is_live_after(ret, Reg::RA));
        // The entry function still kills everything at program end.
        let main = p.function("main").unwrap();
        let lv_main = Liveness::compute(main, &p);
        assert!(!lv_main.is_live_after(PointId(2), Reg::A0));
    }

    #[test]
    fn zero_register_is_never_live() {
        let p = crate::parse_program(
            "func @main(args=0, ret=none) {\nentry:\n    add t0, zero, zero\n    print t0\n    exit\n}\n",
        )
        .unwrap();
        let f = p.entry_function();
        let lv = Liveness::compute(f, &p);
        assert!(!lv.is_live_after(PointId(0), Reg::ZERO));
        assert!(lv.is_live_after(PointId(0), Reg::T0));
    }
}
