//! Per-point register liveness (backward dataflow).
//!
//! Liveness drives the paper's `kill(p)` sets: a register accessed at `p`
//! but not live after `p` is killed there, and any fault arising in it after
//! `p` is masked (Algorithm 2, lines 4–5).
//!
//! At a `ret` of a non-entry function, the ABI-preserved registers — `ra`
//! (consumed by the return itself) and the callee-saved set including `sp`
//! — are live-out: [`Program::call_effects`] models calls as *not*
//! clobbering them, so the caller's analysis assumes their values survive
//! the call, and a masking claim on (say) the epilogue's final `sp`
//! adjustment would be refuted by fault injection (the caller's next stack
//! access crashes). The entry function has no caller, so nothing outlives
//! its `ret`/`exit`.

use crate::cfg::Cfg;
use crate::function::Function;
use crate::point::{PointId, PointLayout};
use crate::program::Program;
use crate::reg::Reg;
use std::collections::HashMap;

/// Dense register numbering for one function (physical and virtual).
#[derive(Clone, Debug, Default)]
pub struct RegUniverse {
    regs: Vec<Reg>,
    index: HashMap<Reg, usize>,
}

impl RegUniverse {
    /// Collects every register mentioned by `f` (including call ABI effects).
    pub fn of(f: &Function, program: &Program) -> RegUniverse {
        let mut u = RegUniverse::default();
        let layout = PointLayout::of(f);
        for p in layout.iter() {
            let pi = layout.resolve(f, p);
            for r in pi.reads(program).into_iter().chain(pi.writes(program)) {
                u.intern(r);
            }
        }
        for r in f.sig.arg_regs() {
            u.intern(r);
        }
        u
    }

    fn intern(&mut self, r: Reg) -> usize {
        if let Some(&i) = self.index.get(&r) {
            return i;
        }
        let i = self.regs.len();
        self.regs.push(r);
        self.index.insert(r, i);
        i
    }

    /// Number of distinct registers.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// True when no register is mentioned.
    pub fn is_empty(&self) -> bool {
        self.regs.is_empty()
    }

    /// Dense index of `r`, if it appears in the function.
    pub fn id(&self, r: Reg) -> Option<usize> {
        self.index.get(&r).copied()
    }

    /// The register with dense index `i`.
    pub fn reg(&self, i: usize) -> Reg {
        self.regs[i]
    }

    /// All registers in interning order.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().copied()
    }
}

/// A fixed-capacity bitset over a [`RegUniverse`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegSet {
    words: Vec<u64>,
}

impl RegSet {
    /// The empty set for a universe of `n` registers.
    pub fn empty(n: usize) -> RegSet {
        RegSet { words: vec![0; n.div_ceil(64)] }
    }

    /// Inserts dense register index `i`; returns whether it was new.
    pub fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let new = *w & bit == 0;
        *w |= bit;
        new
    }

    /// Removes dense register index `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// In-place union; returns whether `self` changed.
    pub fn union_with(&mut self, other: &RegSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// Iterates over member indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64).filter(move |b| w & (1 << b) != 0).map(move |b| wi * 64 + b)
        })
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Liveness analysis results for one function.
#[derive(Clone, Debug)]
pub struct Liveness {
    universe: RegUniverse,
    /// Registers live immediately after each point.
    live_after: Vec<RegSet>,
}

impl Liveness {
    /// Computes per-point liveness for `f`.
    ///
    /// The hardwired zero register is never considered live. Function return
    /// registers are live at `ret` points (they are listed in the
    /// terminator's read set).
    pub fn compute(f: &Function, program: &Program) -> Liveness {
        let universe = RegUniverse::of(f, program);
        let layout = PointLayout::of(f);
        let cfg = Cfg::of(f);
        let n = universe.len();
        let zero = program.config.zero_reg;

        let reg_ids = |regs: Vec<Reg>| -> Vec<usize> {
            regs.into_iter().filter(|r| Some(*r) != zero).filter_map(|r| universe.id(r)).collect()
        };

        // Registers live out of a `ret` (see module docs): the ABI-preserved
        // set plus the return-value registers, whose windows open inside the
        // caller. Empty for the entry function, which nothing returns into.
        let mut ret_seed = RegSet::empty(n);
        if f.name != program.entry {
            for r in universe.iter() {
                if (r == Reg::RA || r.is_callee_saved()) && Some(r) != zero {
                    ret_seed.insert(universe.id(r).expect("universe member"));
                }
            }
        }
        let exit_seeds: Vec<Option<RegSet>> = f
            .blocks
            .iter()
            .map(|blk| {
                if f.name == program.entry {
                    return None;
                }
                match &blk.term {
                    crate::inst::TerminatorKind::Ret { reads } => {
                        let mut seed = ret_seed.clone();
                        for id in reg_ids(reads.clone()) {
                            seed.insert(id);
                        }
                        Some(seed)
                    }
                    _ => None,
                }
            })
            .collect();
        let block_exit_live =
            |b: crate::function::BlockId| -> Option<&RegSet> { exit_seeds[b.index()].as_ref() };

        // Block-level fixpoint on live-in sets.
        let nb = f.blocks.len();
        let mut block_live_in = vec![RegSet::empty(n); nb];
        let mut changed = true;
        while changed {
            changed = false;
            for &b in &cfg.postorder() {
                // live at block end = union of successors' live-in.
                let mut live = RegSet::empty(n);
                for &s in cfg.successors(b) {
                    live.union_with(&block_live_in[s.index()]);
                }
                if let Some(seed) = block_exit_live(b) {
                    live.union_with(seed);
                }
                // Walk points backward.
                let blk = f.block(b);
                for off in (0..blk.point_count()).rev() {
                    let p = layout.point(b, off);
                    let pi = layout.resolve(f, p);
                    for w in reg_ids(pi.writes(program)) {
                        live.remove(w);
                    }
                    for r in reg_ids(pi.reads(program)) {
                        live.insert(r);
                    }
                }
                if block_live_in[b.index()] != live {
                    block_live_in[b.index()] = live;
                    changed = true;
                }
            }
        }

        // Final pass: record live-after per point.
        let mut live_after = vec![RegSet::empty(n); layout.len()];
        for (bi, blk) in f.blocks.iter().enumerate() {
            let b = crate::function::BlockId(bi as u32);
            let mut live = RegSet::empty(n);
            for &s in cfg.successors(b) {
                live.union_with(&block_live_in[s.index()]);
            }
            if let Some(seed) = block_exit_live(b) {
                live.union_with(seed);
            }
            for off in (0..blk.point_count()).rev() {
                let p = layout.point(b, off);
                live_after[p.index()] = live.clone();
                let pi = layout.resolve(f, p);
                for w in reg_ids(pi.writes(program)) {
                    live.remove(w);
                }
                for r in reg_ids(pi.reads(program)) {
                    live.insert(r);
                }
            }
        }

        Liveness { universe, live_after }
    }

    /// The register universe the sets are indexed by.
    pub fn universe(&self) -> &RegUniverse {
        &self.universe
    }

    /// Whether `r` is live immediately after point `p`.
    pub fn is_live_after(&self, p: PointId, r: Reg) -> bool {
        self.universe.id(r).is_some_and(|i| self.live_after[p.index()].contains(i))
    }

    /// The registers live immediately after `p`.
    pub fn live_after(&self, p: PointId) -> impl Iterator<Item = Reg> + '_ {
        self.live_after[p.index()].iter().map(|i| self.universe.reg(i))
    }

    /// Number of registers live after `p`.
    pub fn live_after_count(&self, p: PointId) -> usize {
        self.live_after[p.index()].count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProgramBuilder;
    use crate::config::MachineConfig;
    use crate::reg::Reg;

    /// li t0, 1 ; li t1, 2 ; add t0, t0, t1 ; print t0 ; exit
    fn straightline() -> Program {
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", crate::function::Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 1);
        fb.li(Reg::T1, 2);
        fb.add(Reg::T0, Reg::T0, Reg::T1);
        fb.print(Reg::T0);
        fb.exit();
        fb.finish();
        pb.finish()
    }

    #[test]
    fn straightline_liveness() {
        let p = straightline();
        let f = p.entry_function();
        let lv = Liveness::compute(f, &p);
        // After p0 (li t0,1): t0 live, t1 not yet.
        assert!(lv.is_live_after(PointId(0), Reg::T0));
        assert!(!lv.is_live_after(PointId(0), Reg::T1));
        // After p1: both live.
        assert!(lv.is_live_after(PointId(1), Reg::T0));
        assert!(lv.is_live_after(PointId(1), Reg::T1));
        // After the add, t1 is dead (killed by its last read).
        assert!(lv.is_live_after(PointId(2), Reg::T0));
        assert!(!lv.is_live_after(PointId(2), Reg::T1));
        // After print, nothing is live.
        assert_eq!(lv.live_after_count(PointId(3)), 0);
    }

    #[test]
    fn loop_carried_liveness() {
        // t0 is an induction variable: live throughout the loop.
        let mut pb = ProgramBuilder::new(MachineConfig::rv32());
        let mut fb = pb.function("main", crate::function::Signature::void(0));
        fb.block("entry");
        fb.li(Reg::T0, 7);
        fb.jump("loop");
        fb.block("loop");
        fb.addi(Reg::T0, Reg::T0, -1);
        fb.bnez(Reg::T0, "loop", "exit");
        fb.block("exit");
        fb.exit();
        fb.finish();
        let p = pb.finish();
        let f = p.entry_function();
        let lv = Liveness::compute(f, &p);
        // After the backedge branch (p3), t0 is live on the loop path.
        let layout = PointLayout::of(f);
        let branch = layout.terminator_of(f, f.block_by_label("loop").unwrap());
        assert!(lv.is_live_after(branch, Reg::T0));
    }

    #[test]
    fn abi_preserved_regs_live_out_of_callee_ret() {
        let p = crate::parse_program(
            r#"
func @leaf(args=1, ret=a0) {
entry:
    addi sp, sp, -16
    slli a0, a0, 1
    addi sp, sp, 16
    ret a0
}
func @main(args=0, ret=none) {
entry:
    li a0, 3
    call @leaf
    print a0
    exit
}
"#,
        )
        .unwrap();
        let f = p.function("leaf").unwrap();
        let lv = Liveness::compute(f, &p);
        // The caller assumes the call preserves sp: the epilogue restore at
        // p2 must leave sp live, or a fault there would be claimed masked.
        assert!(lv.is_live_after(PointId(2), Reg::SP));
        // The return value crosses back into the caller: live out of `ret`.
        let layout = PointLayout::of(f);
        let ret = layout.terminator_of(f, f.block_by_label("entry").unwrap());
        assert!(lv.is_live_after(ret, Reg::A0));
        // `ra` is not mentioned by the leaf, so it has no fault sites and
        // stays outside the universe — no claim is made about it.
        assert!(!lv.is_live_after(ret, Reg::RA));
        // The entry function still kills everything at program end.
        let main = p.function("main").unwrap();
        let lv_main = Liveness::compute(main, &p);
        assert!(!lv_main.is_live_after(PointId(2), Reg::A0));
    }

    #[test]
    fn regset_operations() {
        let mut s = RegSet::empty(100);
        assert!(s.insert(3));
        assert!(!s.insert(3));
        assert!(s.insert(99));
        assert!(s.contains(3));
        s.remove(3);
        assert!(!s.contains(3));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![99]);
        assert_eq!(s.count(), 1);
    }
}
