//! Register-machine intermediate representation used by the BEC analysis.
//!
//! This crate is the compiler-IR substrate of the BEC reproduction. It models
//! programs the way the paper's late LLVM backend pass sees them: functions of
//! basic blocks holding three-address instructions over a finite register
//! file, after SSA deconstruction (a register may have many definitions).
//!
//! The instruction set mirrors the RISC-V RV32IM subset the paper evaluates
//! on, including the pseudo-instructions (`mv`, `seqz`, `snez`) that
//! Algorithm 3 of the paper gives dedicated coalescing rules for.
//!
//! # Quick example
//!
//! ```
//! use bec_ir::{parse_program, MachineConfig};
//!
//! let src = r#"
//! machine xlen=32 regs=32 zero=x0
//! func @main(args=0, ret=none) {
//! entry:
//!     li   t0, 41
//!     addi t0, t0, 1
//!     mv   a0, t0
//!     print a0
//!     exit
//! }
//! "#;
//! let program = parse_program(src)?;
//! assert_eq!(program.config, MachineConfig::rv32());
//! assert_eq!(program.functions.len(), 1);
//! # Ok::<(), bec_ir::IrError>(())
//! ```

pub mod access;
pub mod builder;
pub mod cfg;
pub mod config;
pub mod defuse;
pub mod error;
pub mod function;
pub mod inst;
pub mod liveness;
pub mod parser;
pub mod point;
pub mod printer;
pub mod program;
pub mod reg;
pub mod semantics;
pub mod verify;

pub use access::AccessTable;
pub use builder::{FunctionBuilder, ProgramBuilder};
pub use cfg::Cfg;
pub use config::MachineConfig;
pub use defuse::DefUse;
pub use error::IrError;
pub use function::{Block, BlockId, Function, Signature, Terminator};
pub use inst::{AluOp, Cond, Inst, MemWidth};
pub use liveness::Liveness;
pub use parser::parse_program;
pub use point::{PointId, PointInst, PointLayout};
pub use printer::print_program;
pub use program::{Global, Program};
pub use reg::{Reg, RegMask};
pub use verify::verify_program;
