//! Control-flow graph queries: successors, predecessors, reverse postorder.

use crate::function::{BlockId, Function};

/// Precomputed CFG structure of one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
}

impl Cfg {
    /// Builds the CFG of `f`.
    pub fn of(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            for s in b.term.successors() {
                succs[i].push(s);
                preds[s.index()].push(BlockId(i as u32));
            }
        }
        let rpo = reverse_postorder(&succs, n);
        Cfg { succs, preds, rpo }
    }

    /// Successor blocks of `b`.
    pub fn successors(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Predecessor blocks of `b`.
    pub fn predecessors(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// appended at the end in index order so analyses still visit them.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Blocks in postorder (useful for backward analyses).
    pub fn postorder(&self) -> Vec<BlockId> {
        self.rpo.iter().rev().copied().collect()
    }

    /// Whether block `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        // rpo lists reachable blocks first; a block is reachable iff it
        // appears before any unreachable padding. Simpler: recompute.
        let mut seen = vec![false; self.succs.len()];
        let mut stack = vec![BlockId(0)];
        while let Some(x) = stack.pop() {
            if std::mem::replace(&mut seen[x.index()], true) {
                continue;
            }
            stack.extend(self.succs[x.index()].iter().copied());
        }
        seen[b.index()]
    }
}

fn reverse_postorder(succs: &[Vec<BlockId>], n: usize) -> Vec<BlockId> {
    let mut visited = vec![false; n];
    let mut post = Vec::with_capacity(n);
    if n > 0 {
        // Iterative DFS with explicit successor cursors.
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some((b, cursor)) = stack.last_mut() {
            let ss = &succs[b.index()];
            if *cursor < ss.len() {
                let next = ss[*cursor];
                *cursor += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                post.push(*b);
                stack.pop();
            }
        }
    }
    let mut rpo: Vec<BlockId> = post.into_iter().rev().collect();
    for (i, seen) in visited.iter().enumerate().take(n) {
        if !seen {
            rpo.push(BlockId(i as u32));
        }
    }
    rpo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Block, Function, Signature, Terminator};
    use crate::inst::Cond;
    use crate::reg::Reg;

    /// entry -> (loop | exit); loop -> loop | exit
    fn diamondish() -> Function {
        let mut f = Function::new("f", Signature::void(0));
        let mut entry = Block::new("entry");
        entry.term = Terminator::Branch {
            cond: Cond::Ne,
            rs1: Reg::T0,
            rs2: None,
            taken: BlockId(1),
            fallthrough: BlockId(2),
        };
        let mut lp = Block::new("loop");
        lp.term = Terminator::Branch {
            cond: Cond::Ne,
            rs1: Reg::T0,
            rs2: None,
            taken: BlockId(1),
            fallthrough: BlockId(2),
        };
        let mut exit = Block::new("exit");
        exit.term = Terminator::Exit;
        f.blocks = vec![entry, lp, exit];
        f
    }

    #[test]
    fn successors_and_predecessors() {
        let f = diamondish();
        let cfg = Cfg::of(&f);
        assert_eq!(cfg.successors(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.predecessors(BlockId(2)), &[BlockId(0), BlockId(1)]);
        assert_eq!(cfg.predecessors(BlockId(1)), &[BlockId(0), BlockId(1)]);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let f = diamondish();
        let cfg = Cfg::of(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 3);
    }

    #[test]
    fn unreachable_blocks_are_appended() {
        let mut f = diamondish();
        f.blocks.push(Block::new("dead")); // no edges to it
        let cfg = Cfg::of(&f);
        assert_eq!(cfg.reverse_postorder().len(), 4);
        assert!(!cfg.is_reachable(BlockId(3)));
        assert!(cfg.is_reachable(BlockId(2)));
    }
}
