//! Whole programs: functions, global data, and ABI summaries for calls.

use crate::config::MachineConfig;
use crate::function::Function;
use crate::reg::Reg;
use std::collections::HashMap;

/// Base address of the global data segment in the simulated address space.
pub const DATA_BASE: u64 = 0x1000;

/// Initial stack pointer (stack grows down from here).
pub const STACK_TOP: u64 = 0x8_0000;

/// A global data object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Global {
    /// Name (without the `@` sigil).
    pub name: String,
    /// Object size in bytes.
    pub size: u64,
    /// Initial contents; shorter than `size` means zero-fill.
    pub init: Vec<u8>,
}

impl Global {
    /// A zero-initialized global of `size` bytes.
    pub fn zeroed(name: impl Into<String>, size: u64) -> Global {
        Global { name: name.into(), size, init: Vec::new() }
    }

    /// A global holding little-endian 32-bit words.
    pub fn words(name: impl Into<String>, words: &[u32]) -> Global {
        let mut init = Vec::with_capacity(words.len() * 4);
        for w in words {
            init.extend_from_slice(&w.to_le_bytes());
        }
        Global { name: name.into(), size: init.len() as u64, init }
    }
}

/// ABI effects of a call instruction as seen by the caller.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CallEffects {
    /// Registers read by the call (the callee's argument registers).
    pub reads: Vec<Reg>,
    /// Registers defined/clobbered by the call: `ra`, the return value
    /// register (if any), and every caller-saved register.
    pub writes: Vec<Reg>,
}

/// A complete program: machine configuration, globals and functions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Machine geometry the program targets.
    pub config: MachineConfig,
    /// Global data objects, laid out consecutively from [`DATA_BASE`].
    pub globals: Vec<Global>,
    /// Functions; the entry function is named by `entry`.
    pub functions: Vec<Function>,
    /// Name of the entry function (defaults to `main`).
    pub entry: String,
}

impl Program {
    /// Creates an empty program for the given machine.
    pub fn new(config: MachineConfig) -> Program {
        Program { config, globals: Vec::new(), functions: Vec::new(), entry: "main".to_owned() }
    }

    /// Looks up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup of a function by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Index of a function by name.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.functions.iter().position(|f| f.name == name)
    }

    /// The entry function.
    ///
    /// # Panics
    ///
    /// Panics if the entry function does not exist; [`crate::verify_program`]
    /// reports this as an error beforehand.
    pub fn entry_function(&self) -> &Function {
        self.function(&self.entry).expect("entry function exists")
    }

    /// The address of each global, assigned consecutively (4-byte aligned)
    /// from [`DATA_BASE`].
    pub fn global_addresses(&self) -> HashMap<String, u64> {
        let mut out = HashMap::new();
        let mut addr = DATA_BASE;
        for g in &self.globals {
            out.insert(g.name.clone(), addr);
            addr += (g.size + 3) & !3;
        }
        out
    }

    /// The address of one global, if it exists.
    pub fn global_address(&self, name: &str) -> Option<u64> {
        let mut addr = DATA_BASE;
        for g in &self.globals {
            if g.name == name {
                return Some(addr);
            }
            addr += (g.size + 3) & !3;
        }
        None
    }

    /// ABI read/write summary of a call to `callee`.
    ///
    /// Reads comprise the argument registers *and* every callee-saved
    /// register the callee (transitively) writes: the callee's prologue
    /// saves those registers to the stack, which observes — and therefore
    /// propagates — any fault residing in them. Treating them as read keeps
    /// the fault-site analysis sound across calls (a window spanning a call
    /// gets an arrival with no coalescing rules and never merges).
    ///
    /// Unknown callees are summarized maximally (no reads, all caller-saved
    /// clobbered); the verifier rejects unknown callees, so this only matters
    /// for partially constructed programs.
    pub fn call_effects(&self, callee: &str) -> CallEffects {
        let sig = self.function(callee).map(|f| f.sig);
        let mut reads = sig.map(|s| s.arg_regs()).unwrap_or_default();
        for r in self.transitively_saved(callee) {
            if !reads.contains(&r) {
                reads.push(r);
            }
        }
        let mut writes = vec![Reg::RA];
        if sig.map(|s| s.has_ret).unwrap_or(true) {
            writes.push(Reg::A0);
        }
        if self.config.num_regs == 32 {
            for i in 0..self.config.num_regs {
                let r = Reg::phys(i);
                if r.is_caller_saved() && !writes.contains(&r) {
                    writes.push(r);
                }
            }
        }
        CallEffects { reads, writes }
    }

    /// The callee-saved registers written (and hence saved/restored) by
    /// `callee` or any function it can transitively call.
    pub fn transitively_saved(&self, callee: &str) -> Vec<Reg> {
        let mut saved: Vec<Reg> = Vec::new();
        let mut visited: Vec<&str> = Vec::new();
        let mut stack = vec![callee];
        while let Some(name) = stack.pop() {
            if visited.contains(&name) {
                continue;
            }
            visited.push(name);
            let Some(f) = self.function(name) else { continue };
            for inst in f.insts() {
                if let crate::inst::Inst::Call { callee: next } = inst {
                    stack.push(next);
                }
                for w in inst.writes() {
                    if w != Reg::SP && w.is_callee_saved() && !saved.contains(&w) {
                        saved.push(w);
                    }
                }
            }
        }
        saved.sort();
        saved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Signature;

    #[test]
    fn global_layout_is_consecutive_and_aligned() {
        let mut p = Program::new(MachineConfig::rv32());
        p.globals.push(Global::zeroed("a", 6));
        p.globals.push(Global::words("b", &[1, 2]));
        let addrs = p.global_addresses();
        assert_eq!(addrs["a"], DATA_BASE);
        assert_eq!(addrs["b"], DATA_BASE + 8); // 6 rounded up to 8
        assert_eq!(p.global_address("b"), Some(DATA_BASE + 8));
        assert_eq!(p.global_address("c"), None);
    }

    #[test]
    fn call_effects_follow_signature() {
        let mut p = Program::new(MachineConfig::rv32());
        p.functions.push(Function::new("f", Signature::returning(2)));
        let fx = p.call_effects("f");
        assert_eq!(fx.reads, vec![Reg::A0, Reg::A1]);
        assert!(fx.writes.contains(&Reg::RA));
        assert!(fx.writes.contains(&Reg::A0));
        // t0 is caller-saved and must be clobbered.
        assert!(fx.writes.contains(&Reg::T0));
        // s0 is callee-saved and must not be.
        assert!(!fx.writes.contains(&Reg::S0));
    }

    #[test]
    fn words_global_encodes_little_endian() {
        let g = Global::words("t", &[0x0102_0304]);
        assert_eq!(g.init, vec![4, 3, 2, 1]);
        assert_eq!(g.size, 4);
    }
}
