//! Register naming and classification.

use std::fmt;

/// A register operand.
///
/// Registers are either *physical* (an index into the machine register file)
/// or *virtual* (an unbounded temporary produced by `bec-lang` before
/// register allocation). Machine programs handed to the BEC analysis or the
/// simulator must only contain physical registers; [`crate::verify_program`]
/// enforces this.
///
/// ```
/// use bec_ir::Reg;
/// assert_eq!(Reg::A0.index(), 10);
/// assert!(Reg::virt(3).is_virtual());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u32);

const VIRT_BIT: u32 = 1 << 31;

impl Reg {
    /// The RISC-V hardwired zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address register `ra` (`x1`).
    pub const RA: Reg = Reg(1);
    /// Stack pointer `sp` (`x2`).
    pub const SP: Reg = Reg(2);
    /// Global pointer `gp` (`x3`).
    pub const GP: Reg = Reg(3);
    /// Thread pointer `tp` (`x4`).
    pub const TP: Reg = Reg(4);
    /// First argument / return value register `a0` (`x10`).
    pub const A0: Reg = Reg(10);
    /// Second argument register `a1` (`x11`).
    pub const A1: Reg = Reg(11);
    /// Temporary `t0` (`x5`).
    pub const T0: Reg = Reg(5);
    /// Temporary `t1` (`x6`).
    pub const T1: Reg = Reg(6);
    /// Temporary `t2` (`x7`).
    pub const T2: Reg = Reg(7);
    /// Callee-saved `s0` (`x8`).
    pub const S0: Reg = Reg(8);
    /// Callee-saved `s1` (`x9`).
    pub const S1: Reg = Reg(9);

    /// Creates a physical register with the given register-file index.
    ///
    /// # Panics
    ///
    /// Panics if `index` collides with the virtual-register encoding
    /// (indices must be below 2^31).
    pub fn phys(index: u32) -> Reg {
        assert!(index < VIRT_BIT, "physical register index out of range");
        Reg(index)
    }

    /// Creates a virtual register (pre-register-allocation temporary).
    pub fn virt(index: u32) -> Reg {
        assert!(index < VIRT_BIT, "virtual register index out of range");
        Reg(index | VIRT_BIT)
    }

    /// The register-file index (physical) or temporary number (virtual).
    pub fn index(self) -> u32 {
        self.0 & !VIRT_BIT
    }

    /// Whether this is a virtual (pre-allocation) register.
    pub fn is_virtual(self) -> bool {
        self.0 & VIRT_BIT != 0
    }

    /// The `n`-th RISC-V argument register `a{n}` (n < 8).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    pub fn arg(n: u32) -> Reg {
        assert!(n < 8, "RISC-V passes at most 8 register arguments");
        Reg(10 + n)
    }

    /// The `n`-th RISC-V callee-saved register: `s0..s11`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 12`.
    pub fn saved(n: u32) -> Reg {
        assert!(n < 12);
        match n {
            0 => Reg(8),
            1 => Reg(9),
            _ => Reg(18 + (n - 2)),
        }
    }

    /// The `n`-th RISC-V temporary register: `t0..t6`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 7`.
    pub fn temp(n: u32) -> Reg {
        assert!(n < 7);
        match n {
            0..=2 => Reg(5 + n),
            _ => Reg(28 + (n - 3)),
        }
    }

    /// Whether this register is caller-saved under the RISC-V ABI
    /// (`ra`, `t0..t6`, `a0..a7`). Only meaningful for 32-register configs.
    pub fn is_caller_saved(self) -> bool {
        let i = self.index();
        !self.is_virtual()
            && (i == 1 || (5..=7).contains(&i) || (10..=17).contains(&i) || (28..=31).contains(&i))
    }

    /// Whether this register is callee-saved under the RISC-V ABI
    /// (`sp`, `s0..s11`). Only meaningful for 32-register configs.
    pub fn is_callee_saved(self) -> bool {
        let i = self.index();
        !self.is_virtual() && (i == 2 || i == 8 || i == 9 || (18..=27).contains(&i))
    }

    /// The canonical RISC-V ABI name (`zero`, `ra`, `sp`, …) for 32-register
    /// machines, or `r{i}` / `v{i}` otherwise.
    pub fn abi_name(self) -> String {
        if self.is_virtual() {
            return format!("v{}", self.index());
        }
        let i = self.index();
        match i {
            0 => "zero".to_owned(),
            1 => "ra".to_owned(),
            2 => "sp".to_owned(),
            3 => "gp".to_owned(),
            4 => "tp".to_owned(),
            5..=7 => format!("t{}", i - 5),
            8 => "s0".to_owned(),
            9 => "s1".to_owned(),
            10..=17 => format!("a{}", i - 10),
            18..=27 => format!("s{}", i - 16),
            28..=31 => format!("t{}", i - 25),
            _ => format!("r{i}"),
        }
    }

    /// Parses a register name: ABI names (`a0`, `t3`, `zero`), `x{i}`,
    /// `r{i}`, or virtual `v{i}`. Returns `None` for unknown names.
    pub fn parse(name: &str) -> Option<Reg> {
        let tail_index = |s: &str| s.parse::<u32>().ok();
        match name {
            "zero" => return Some(Reg(0)),
            "ra" => return Some(Reg(1)),
            "sp" => return Some(Reg(2)),
            "gp" => return Some(Reg(3)),
            "tp" => return Some(Reg(4)),
            "fp" => return Some(Reg(8)),
            _ => {}
        }
        let (prefix, rest) = name.split_at(1);
        let n = tail_index(rest)?;
        match prefix {
            "x" | "r" => (n < VIRT_BIT).then(|| Reg::phys(n)),
            "v" => Some(Reg::virt(n)),
            "t" => (n < 7).then(|| Reg::temp(n)),
            "s" => (n < 12).then(|| Reg::saved(n)),
            "a" => (n < 8).then(|| Reg::arg(n)),
            _ => None,
        }
    }
}

/// A set of physical registers as a single `u64` bitmask (bit `i` =
/// register index `i`).
///
/// RV32 has 32 architectural registers and no supported machine config
/// exceeds 64, so one word covers every register set the analyses handle;
/// all set algebra is branch-free mask arithmetic. The analysis paths
/// (liveness, def–use, checkpoint convergence) use this instead of heap
/// bitsets or hash sets.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct RegMask(pub u64);

impl RegMask {
    /// The empty set.
    pub const fn empty() -> RegMask {
        RegMask(0)
    }

    /// The set containing exactly `r`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `r` is virtual or its index is ≥ 64.
    pub fn of(r: Reg) -> RegMask {
        debug_assert!(!r.is_virtual() && r.index() < 64, "RegMask holds physical regs < 64");
        RegMask(1u64 << r.index())
    }

    /// The set containing `r`, or the empty set when `r` does not fit the
    /// mask (virtual, or index ≥ 64). For paths that must tolerate exotic
    /// configs: callers compare such registers exactly instead.
    pub fn of_saturating(r: Reg) -> RegMask {
        if !r.is_virtual() && r.index() < 64 {
            RegMask(1u64 << r.index())
        } else {
            RegMask(0)
        }
    }

    /// Inserts `r`; returns whether it was new.
    pub fn insert(&mut self, r: Reg) -> bool {
        let bit = RegMask::of(r).0;
        let new = self.0 & bit == 0;
        self.0 |= bit;
        new
    }

    /// Removes `r`.
    pub fn remove(&mut self, r: Reg) {
        self.0 &= !RegMask::of(r).0;
    }

    /// Membership test.
    pub fn contains(self, r: Reg) -> bool {
        !r.is_virtual() && r.index() < 64 && self.0 & (1u64 << r.index()) != 0
    }

    /// Set union.
    pub fn union(self, other: RegMask) -> RegMask {
        RegMask(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(self, other: RegMask) -> RegMask {
        RegMask(self.0 & other.0)
    }

    /// Set difference (`self \ other`).
    pub fn difference(self, other: RegMask) -> RegMask {
        RegMask(self.0 & !other.0)
    }

    /// In-place union; returns whether `self` grew.
    pub fn union_with(&mut self, other: RegMask) -> bool {
        let old = self.0;
        self.0 |= other.0;
        self.0 != old
    }

    /// Whether no register is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of members.
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates members in ascending register-index order.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let i = bits.trailing_zeros();
            bits &= bits - 1;
            Some(Reg::phys(i))
        })
    }
}

impl FromIterator<Reg> for RegMask {
    fn from_iter<T: IntoIterator<Item = Reg>>(iter: T) -> RegMask {
        let mut m = RegMask::empty();
        for r in iter {
            m.insert(r);
        }
        m
    }
}

impl fmt::Debug for RegMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_virtual() {
            write!(f, "v{}", self.index())
        } else {
            write!(f, "x{}", self.index())
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.abi_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abi_names_roundtrip() {
        for i in 0..32 {
            let r = Reg::phys(i);
            assert_eq!(Reg::parse(&r.abi_name()), Some(r), "name {}", r.abi_name());
        }
    }

    #[test]
    fn x_and_r_names_parse() {
        assert_eq!(Reg::parse("x10"), Some(Reg::A0));
        assert_eq!(Reg::parse("r3"), Some(Reg::GP));
        assert_eq!(Reg::parse("v7"), Some(Reg::virt(7)));
    }

    #[test]
    fn temp_and_saved_indices() {
        assert_eq!(Reg::temp(3).index(), 28);
        assert_eq!(Reg::temp(6).index(), 31);
        assert_eq!(Reg::saved(2).index(), 18);
        assert_eq!(Reg::saved(11).index(), 27);
    }

    #[test]
    fn caller_callee_partition_covers_all_but_special() {
        // Every register except zero/gp/tp is exactly one of caller/callee saved.
        for i in 0..32u32 {
            let r = Reg::phys(i);
            if [0, 3, 4].contains(&i) {
                assert!(!r.is_caller_saved() && !r.is_callee_saved());
            } else {
                assert!(r.is_caller_saved() ^ r.is_callee_saved(), "reg {r}");
            }
        }
    }

    #[test]
    fn virtual_regs_are_distinct_from_physical() {
        assert_ne!(Reg::virt(5), Reg::phys(5));
        assert!(Reg::virt(5).is_virtual());
        assert!(!Reg::phys(5).is_virtual());
    }

    #[test]
    #[should_panic]
    fn arg_index_out_of_range_panics() {
        let _ = Reg::arg(8);
    }

    #[test]
    fn regmask_set_algebra() {
        let mut m = RegMask::empty();
        assert!(m.insert(Reg::T0));
        assert!(!m.insert(Reg::T0));
        assert!(m.insert(Reg::A0));
        assert!(m.contains(Reg::T0) && m.contains(Reg::A0));
        assert_eq!(m.count(), 2);
        assert_eq!(m.iter().collect::<Vec<_>>(), vec![Reg::T0, Reg::A0]);
        m.remove(Reg::T0);
        assert!(!m.contains(Reg::T0));
        let other = RegMask::of(Reg::SP).union(RegMask::of(Reg::A0));
        assert_eq!(m.union(other).count(), 2);
        assert_eq!(m.intersect(other), RegMask::of(Reg::A0));
        assert_eq!(other.difference(m), RegMask::of(Reg::SP));
        assert!(!m.contains(Reg::virt(10)));
        let collected: RegMask = [Reg::T1, Reg::T2, Reg::T1].into_iter().collect();
        assert_eq!(collected.count(), 2);
    }
}
