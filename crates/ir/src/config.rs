//! Machine configuration: register-file geometry and word width.

use crate::reg::Reg;

/// Geometry of the machine the program runs on.
///
/// The BEC analysis and the simulator are parametric in the word width
/// (`xlen`) and the number of registers, so the paper's 4-bit motivating
/// example (Figs. 1–2) and the RV32 evaluation machine are both expressible.
///
/// ```
/// use bec_ir::MachineConfig;
/// let rv = MachineConfig::rv32();
/// assert_eq!(rv.xlen, 32);
/// assert_eq!(rv.mask(), 0xffff_ffff);
/// let toy = MachineConfig::example4();
/// assert_eq!(toy.mask(), 0xf);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MachineConfig {
    /// Word width in bits (1..=64).
    pub xlen: u32,
    /// Number of registers in the register file.
    pub num_regs: u32,
    /// The hardwired-zero register, if the machine has one. Reads yield 0,
    /// writes are discarded, and it is excluded from the fault space.
    pub zero_reg: Option<Reg>,
}

impl MachineConfig {
    /// The RV32 configuration used for the paper's evaluation:
    /// 32-bit words, 32 registers, `x0` hardwired to zero.
    pub fn rv32() -> MachineConfig {
        MachineConfig { xlen: 32, num_regs: 32, zero_reg: Some(Reg::ZERO) }
    }

    /// The 4-bit, 4-register machine of the paper's motivating example
    /// (Figs. 1, 2 and 4). It has no hardwired zero register.
    pub fn example4() -> MachineConfig {
        MachineConfig { xlen: 4, num_regs: 4, zero_reg: None }
    }

    /// Bit mask selecting the `xlen` low bits of a `u64`.
    pub fn mask(&self) -> u64 {
        if self.xlen >= 64 {
            u64::MAX
        } else {
            (1u64 << self.xlen) - 1
        }
    }

    /// Truncates a value to the machine word width.
    pub fn truncate(&self, value: u64) -> u64 {
        value & self.mask()
    }

    /// Sign-extends the `xlen`-bit value `v` to a signed 64-bit integer.
    pub fn sign_extend(&self, v: u64) -> i64 {
        let v = self.truncate(v);
        if self.xlen >= 64 {
            return v as i64;
        }
        let sign = 1u64 << (self.xlen - 1);
        if v & sign != 0 {
            (v | !self.mask()) as i64
        } else {
            v as i64
        }
    }

    /// Mask applied to shift amounts (RISC-V masks shifts to `log2(xlen)`
    /// bits; for non-power-of-two toy widths we mask by `xlen` via modulo).
    pub fn shamt(&self, raw: u64) -> u32 {
        if self.xlen.is_power_of_two() {
            (raw as u32) & (self.xlen - 1)
        } else {
            (raw % self.xlen as u64) as u32
        }
    }

    /// Whether `r` is the hardwired zero register.
    pub fn is_zero_reg(&self, r: Reg) -> bool {
        self.zero_reg == Some(r)
    }

    /// Registers that constitute the fault space `V` (all registers except a
    /// hardwired zero, which has no storage element to corrupt).
    pub fn fault_regs(&self) -> impl Iterator<Item = Reg> + '_ {
        (0..self.num_regs).map(Reg::phys).filter(|r| !self.is_zero_reg(*r))
    }

    /// Size of the spatial fault space in bits: `|V| * xlen`.
    pub fn fault_bits(&self) -> u64 {
        let regs = self.num_regs as u64 - u64::from(self.zero_reg.is_some());
        regs * self.xlen as u64
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::rv32()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_extension_4bit() {
        let c = MachineConfig::example4();
        assert_eq!(c.sign_extend(0b0111), 7);
        assert_eq!(c.sign_extend(0b1000), -8);
        assert_eq!(c.sign_extend(0b1111), -1);
    }

    #[test]
    fn sign_extension_32bit() {
        let c = MachineConfig::rv32();
        assert_eq!(c.sign_extend(0x7fff_ffff), 0x7fff_ffff);
        assert_eq!(c.sign_extend(0x8000_0000), -(0x8000_0000i64));
        assert_eq!(c.sign_extend(0xffff_ffff), -1);
    }

    #[test]
    fn fault_space_excludes_zero_reg() {
        assert_eq!(MachineConfig::rv32().fault_bits(), 31 * 32);
        assert_eq!(MachineConfig::example4().fault_bits(), 4 * 4);
        assert_eq!(MachineConfig::rv32().fault_regs().count(), 31);
    }

    #[test]
    fn shamt_masks_power_of_two() {
        let c = MachineConfig::rv32();
        assert_eq!(c.shamt(33), 1);
        assert_eq!(c.shamt(31), 31);
        let t = MachineConfig::example4();
        assert_eq!(t.shamt(5), 1);
    }
}
