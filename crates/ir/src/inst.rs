//! Instructions of the register machine.

use crate::function::BlockId;
use crate::reg::Reg;
use std::fmt;

/// Binary ALU operations (the RV32IM arithmetic/logic subset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`).
    Sub,
    /// Bitwise and (`and`/`andi`).
    And,
    /// Bitwise or (`or`/`ori`).
    Or,
    /// Bitwise exclusive or (`xor`/`xori`).
    Xor,
    /// Logical shift left (`sll`/`slli`).
    Sll,
    /// Logical shift right (`srl`/`srli`).
    Srl,
    /// Arithmetic shift right (`sra`/`srai`).
    Sra,
    /// Signed set-less-than (`slt`/`slti`).
    Slt,
    /// Unsigned set-less-than (`sltu`/`sltiu`).
    Sltu,
    /// Multiplication, low word (`mul`).
    Mul,
    /// Signed×signed multiplication, high word (`mulh`).
    Mulh,
    /// Unsigned multiplication, high word (`mulhu`).
    Mulhu,
    /// Signed division (`div`).
    Div,
    /// Unsigned division (`divu`).
    Divu,
    /// Signed remainder (`rem`).
    Rem,
    /// Unsigned remainder (`remu`).
    Remu,
}

impl AluOp {
    /// Whether the operation has an immediate form in the assembly syntax
    /// (`addi`, `andi`, …). `sub`, multiplication and division do not.
    pub fn has_imm_form(self) -> bool {
        use AluOp::*;
        matches!(self, Add | And | Or | Xor | Sll | Srl | Sra | Slt | Sltu)
    }

    /// The assembly mnemonic of the register-register form.
    pub fn mnemonic(self) -> &'static str {
        use AluOp::*;
        match self {
            Add => "add",
            Sub => "sub",
            And => "and",
            Or => "or",
            Xor => "xor",
            Sll => "sll",
            Srl => "srl",
            Sra => "sra",
            Slt => "slt",
            Sltu => "sltu",
            Mul => "mul",
            Mulh => "mulh",
            Mulhu => "mulhu",
            Div => "div",
            Divu => "divu",
            Rem => "rem",
            Remu => "remu",
        }
    }

    /// Whether this is one of the compare-like operations (`slt`, `sltu`)
    /// that the paper's Algorithm 3 treats with `eval`-equivalence.
    pub fn is_compare(self) -> bool {
        matches!(self, AluOp::Slt | AluOp::Sltu)
    }
}

/// Memory access width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemWidth {
    /// One byte (`lb`/`lbu`/`sb`).
    Byte,
    /// Two bytes (`lh`/`lhu`/`sh`).
    Half,
    /// Four bytes (`lw`/`sw`).
    Word,
}

impl MemWidth {
    /// The access size in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            MemWidth::Byte => 1,
            MemWidth::Half => 2,
            MemWidth::Word => 4,
        }
    }
}

/// Branch conditions (`beq`, `bne`, `blt`, `bge`, `bltu`, `bgeu`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl Cond {
    /// The branch mnemonic (`beq`, `bne`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        }
    }
}

/// A non-terminator instruction.
///
/// Every variant is a *program point* in the paper's sense: it has a read
/// set, a write set, and bit-level semantics that the analysis abstracts.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// Three-address ALU operation `op rd, rs1, rs2`.
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// ALU operation with immediate `op rd, rs1, imm`.
    AluImm { op: AluOp, rd: Reg, rs1: Reg, imm: i64 },
    /// Load immediate `li rd, imm`.
    Li { rd: Reg, imm: i64 },
    /// Load the address of a global `la rd, @name` (resolved at link time).
    La { rd: Reg, global: String },
    /// Register move `mv rd, rs`.
    Mv { rd: Reg, rs: Reg },
    /// Arithmetic negation `neg rd, rs` (i.e. `0 - rs`).
    Neg { rd: Reg, rs: Reg },
    /// Set-if-zero `seqz rd, rs` (`rd := (rs == 0) ? 1 : 0`).
    Seqz { rd: Reg, rs: Reg },
    /// Set-if-nonzero `snez rd, rs` (`rd := (rs != 0) ? 1 : 0`).
    Snez { rd: Reg, rs: Reg },
    /// Memory load `rd := mem[rs1 + offset]`.
    Load { rd: Reg, base: Reg, offset: i64, width: MemWidth, signed: bool },
    /// Memory store `mem[base + offset] := rs`.
    Store { rs: Reg, base: Reg, offset: i64, width: MemWidth },
    /// Call of another function by name. Argument/return registers follow
    /// the callee's signature; caller-saved registers are clobbered.
    Call { callee: String },
    /// Observable output of one register value (the simulator records it in
    /// the execution trace; a stand-in for an output `ecall`).
    Print { rs: Reg },
    /// No operation (used by the scheduler's padding tests).
    Nop,
}

impl Inst {
    /// Registers read by this instruction. The hardwired zero register is
    /// still reported here; callers that build fault spaces filter it.
    ///
    /// For `Call`, the reads are the callee's argument registers and must be
    /// obtained through [`crate::function::Signature`]-aware helpers on
    /// [`crate::program::Program`]; this method reports an empty set for
    /// calls.
    pub fn reads(&self) -> Vec<Reg> {
        match self {
            Inst::Alu { rs1, rs2, .. } => vec![*rs1, *rs2],
            Inst::AluImm { rs1, .. } => vec![*rs1],
            Inst::Li { .. } | Inst::La { .. } | Inst::Nop | Inst::Call { .. } => vec![],
            Inst::Mv { rs, .. }
            | Inst::Neg { rs, .. }
            | Inst::Seqz { rs, .. }
            | Inst::Snez { rs, .. } => vec![*rs],
            Inst::Load { base, .. } => vec![*base],
            Inst::Store { rs, base, .. } => vec![*rs, *base],
            Inst::Print { rs } => vec![*rs],
        }
    }

    /// Registers written by this instruction (empty for stores, prints and
    /// nops; call write sets are signature-dependent, see
    /// [`crate::program::Program::call_effects`]).
    pub fn writes(&self) -> Vec<Reg> {
        match self {
            Inst::Alu { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Li { rd, .. }
            | Inst::La { rd, .. }
            | Inst::Mv { rd, .. }
            | Inst::Neg { rd, .. }
            | Inst::Seqz { rd, .. }
            | Inst::Snez { rd, .. }
            | Inst::Load { rd, .. } => vec![*rd],
            Inst::Store { .. } | Inst::Call { .. } | Inst::Print { rs: _ } | Inst::Nop => vec![],
        }
    }

    /// Whether the instruction touches memory or has other side effects that
    /// impose ordering constraints on the scheduler.
    pub fn has_side_effects(&self) -> bool {
        matches!(
            self,
            Inst::Load { .. } | Inst::Store { .. } | Inst::Call { .. } | Inst::Print { .. }
        )
    }

    /// Rewrites every register operand through `f` (used by the register
    /// allocator when assigning physical registers).
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            Inst::Alu { rd, rs1, rs2, .. } => {
                *rd = f(*rd);
                *rs1 = f(*rs1);
                *rs2 = f(*rs2);
            }
            Inst::AluImm { rd, rs1, .. } => {
                *rd = f(*rd);
                *rs1 = f(*rs1);
            }
            Inst::Li { rd, .. } | Inst::La { rd, .. } => *rd = f(*rd),
            Inst::Mv { rd, rs }
            | Inst::Neg { rd, rs }
            | Inst::Seqz { rd, rs }
            | Inst::Snez { rd, rs } => {
                *rd = f(*rd);
                *rs = f(*rs);
            }
            Inst::Load { rd, base, .. } => {
                *rd = f(*rd);
                *base = f(*base);
            }
            Inst::Store { rs, base, .. } => {
                *rs = f(*rs);
                *base = f(*base);
            }
            Inst::Print { rs } => *rs = f(*rs),
            Inst::Call { .. } | Inst::Nop => {}
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                // RISC-V spells the unsigned compare immediate `sltiu`.
                let m = match op {
                    AluOp::Sltu => "sltiu".to_owned(),
                    other => format!("{}i", other.mnemonic()),
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::La { rd, global } => write!(f, "la {rd}, @{global}"),
            Inst::Mv { rd, rs } => write!(f, "mv {rd}, {rs}"),
            Inst::Neg { rd, rs } => write!(f, "neg {rd}, {rs}"),
            Inst::Seqz { rd, rs } => write!(f, "seqz {rd}, {rs}"),
            Inst::Snez { rd, rs } => write!(f, "snez {rd}, {rs}"),
            Inst::Load { rd, base, offset, width, signed } => {
                let m = match (width, signed) {
                    (MemWidth::Byte, true) => "lb",
                    (MemWidth::Byte, false) => "lbu",
                    (MemWidth::Half, true) => "lh",
                    (MemWidth::Half, false) => "lhu",
                    (MemWidth::Word, _) => "lw",
                };
                write!(f, "{m} {rd}, {offset}({base})")
            }
            Inst::Store { rs, base, offset, width } => {
                let m = match width {
                    MemWidth::Byte => "sb",
                    MemWidth::Half => "sh",
                    MemWidth::Word => "sw",
                };
                write!(f, "{m} {rs}, {offset}({base})")
            }
            Inst::Call { callee } => write!(f, "call @{callee}"),
            Inst::Print { rs } => write!(f, "print {rs}"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

/// A terminator ends a basic block. It is also a program point.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum TerminatorKind {
    /// Unconditional jump.
    Jump { target: BlockId },
    /// Conditional branch. `rs2 = None` encodes the compare-with-zero forms
    /// (`beqz`, `bnez`, …), which exist even on machines without a hardwired
    /// zero register (the paper's 4-bit example uses `bnez`).
    Branch { cond: Cond, rs1: Reg, rs2: Option<Reg>, taken: BlockId, fallthrough: BlockId },
    /// Function return. `reads` lists the registers whose values are live-out
    /// (the ABI return registers, or explicit registers in toy examples).
    Ret { reads: Vec<Reg> },
    /// Program halt (only meaningful in the entry function).
    Exit,
}

impl TerminatorKind {
    /// Registers read by the terminator.
    pub fn reads(&self) -> Vec<Reg> {
        match self {
            TerminatorKind::Jump { .. } | TerminatorKind::Exit => vec![],
            TerminatorKind::Branch { rs1, rs2, .. } => {
                let mut v = vec![*rs1];
                v.extend(rs2.iter().copied());
                v
            }
            TerminatorKind::Ret { reads } => reads.clone(),
        }
    }

    /// Successor blocks in control-flow order (taken edge first).
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            TerminatorKind::Jump { target } => vec![*target],
            TerminatorKind::Branch { taken, fallthrough, .. } => vec![*taken, *fallthrough],
            TerminatorKind::Ret { .. } | TerminatorKind::Exit => vec![],
        }
    }

    /// Rewrites register operands through `f`.
    pub fn map_regs(&mut self, mut f: impl FnMut(Reg) -> Reg) {
        match self {
            TerminatorKind::Branch { rs1, rs2, .. } => {
                *rs1 = f(*rs1);
                if let Some(r) = rs2 {
                    *r = f(*r);
                }
            }
            TerminatorKind::Ret { reads } => {
                for r in reads {
                    *r = f(*r);
                }
            }
            TerminatorKind::Jump { .. } | TerminatorKind::Exit => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_sets() {
        let i = Inst::Alu { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A1 };
        assert_eq!(i.reads(), vec![Reg::A0, Reg::A1]);
        assert_eq!(i.writes(), vec![Reg::A0]);

        let s = Inst::Store { rs: Reg::T0, base: Reg::SP, offset: 4, width: MemWidth::Word };
        assert_eq!(s.reads(), vec![Reg::T0, Reg::SP]);
        assert!(s.writes().is_empty());
    }

    #[test]
    fn display_forms() {
        let i = Inst::AluImm { op: AluOp::And, rd: Reg::T0, rs1: Reg::T1, imm: 1 };
        assert_eq!(i.to_string(), "andi t0, t1, 1");
        let l = Inst::Load {
            rd: Reg::A0,
            base: Reg::SP,
            offset: -8,
            width: MemWidth::Word,
            signed: true,
        };
        assert_eq!(l.to_string(), "lw a0, -8(sp)");
    }

    #[test]
    fn map_regs_rewrites_all_operands() {
        let mut i =
            Inst::Alu { op: AluOp::Xor, rd: Reg::virt(0), rs1: Reg::virt(1), rs2: Reg::virt(2) };
        i.map_regs(|r| Reg::phys(r.index() + 10));
        assert_eq!(i.reads(), vec![Reg::A1, Reg::phys(12)]);
        assert_eq!(i.writes(), vec![Reg::A0]);
    }

    #[test]
    fn branch_successors_order_taken_first() {
        let t = TerminatorKind::Branch {
            cond: Cond::Ne,
            rs1: Reg::T0,
            rs2: None,
            taken: BlockId(1),
            fallthrough: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
    }
}
