//! The full pipeline on your own code: compile a mini-C program, analyze
//! it, validate the analysis empirically, and print a per-site report.
//!
//! ```text
//! cargo run --release --example compile_and_analyze
//! ```

use bec_core::{BecAnalysis, BecOptions};
use bec_ir::PointLayout;
use bec_sim::{validate_program, Simulator};

const SOURCE: &str = r#"
// A parity-and-population check over a small table.
int data[6] = { 0x13, 0x2a, 0x07, 0x58, 0x6c, 0x01 };

int popcount(int x) {
    int n = 0;
    while (x) { x = x & (x - 1); n = n + 1; }
    return n;
}

void main() {
    int parity = 0;
    int total = 0;
    int i = 0;
    for (i = 0; i < 6; i = i + 1) {
        int v = data[i];
        parity = parity ^ v;
        total = total + popcount(v);
    }
    print(parity & 0xff);
    print(total);
}
"#;

fn main() {
    let program = bec_lang::compile(SOURCE).expect("compiles");
    println!("compiled {} functions, {} globals\n", program.functions.len(), program.globals.len());
    println!("{}", bec_ir::print_program(&program));

    let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
    let sim = Simulator::new(&program);
    let golden = sim.run_golden();
    println!("golden outputs: {:?} in {} cycles\n", golden.outputs(), golden.cycles());

    // Per-function masked-bit summary.
    for (fi, fa) in bec.functions().iter().enumerate() {
        let func = &program.functions[fi];
        let layout = PointLayout::of(func);
        let _ = layout;
        let s0 = fa.coalescing.s0_class();
        let w = program.config.xlen;
        let mut total_bits = 0u64;
        let mut masked = 0u64;
        for (p, r) in fa.coalescing.nodes().site_pairs() {
            for bit in 0..w {
                total_bits += 1;
                if fa.coalescing.class_of(p, r, bit) == Some(s0) {
                    masked += 1;
                }
            }
        }
        println!(
            "@{:<10} {:>5} site bits, {:>5} masked ({:.1}%), {} equivalence classes",
            fa.name,
            total_bits,
            masked,
            100.0 * masked as f64 / total_bits.max(1) as f64,
            fa.coalescing.class_count()
        );
    }

    // Empirical validation (§V): every claim checked by fault injection.
    println!("\nvalidating against exhaustive injection …");
    let report = validate_program(&program, &BecOptions::paper());
    println!(
        "{} runs: {} sound-precise, {} masked-confirmed, {} imprecise-pairs, {} unsound",
        report.runs,
        report.sound_precise,
        report.masked_confirmed,
        report.imprecise_pairs,
        report.unsound + report.masked_violations
    );
    assert!(report.is_sound());
}
