//! Quickstart: run the BEC analysis on the paper's motivating example and
//! inspect what it proves about each fault site.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bec::prelude::*;
use bec_core::{BecAnalysis, BecOptions};

fn main() {
    // Fig. 1 / Fig. 2a: countYears on a 4-bit, 4-register machine.
    let program = bec::motivating_example();
    verify_program(&program).expect("well-formed program");

    // Run the two-phase analysis: global bit-value analysis + fault-index
    // coalescing.
    let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
    let fa = bec.function_by_name("main").expect("analyzed");

    println!("BEC quickstart — the paper's motivating example\n");

    // 1. Abstract bit values (the `k(p, v)` of the paper).
    let r2 = Reg::phys(2);
    let andi = bec_ir::PointId(3); // first instruction of the loop body
    println!(
        "after `andi r2, r1, 1` the analysis knows r2 = {}  (paper: 000×)",
        fa.values.value_after(andi, r2)
    );

    // 2. Equivalent fault sites: the three known-zero bits of r2 share one
    //    equivalence class because flipping any of them makes the following
    //    seqz produce the same result.
    let c1 = fa.coalescing.class_of(andi, r2, 1).unwrap();
    let c2 = fa.coalescing.class_of(andi, r2, 2).unwrap();
    let c3 = fa.coalescing.class_of(andi, r2, 3).unwrap();
    assert_eq!(c1, c2);
    assert_eq!(c2, c3);
    println!("fault sites (p2, r2^1), (p2, r2^2), (p2, r2^3) are equivalent: one FI run covers all three");

    // 3. Masked fault sites: after the seqz, the high bits of r2 are dead —
    //    the downstream `and` provably masks them.
    let seqz = bec_ir::PointId(6);
    for bit in 1..4 {
        assert_eq!(fa.coalescing.is_masked(seqz, r2, bit), Some(true));
    }
    println!("fault sites (p5, r2^1..3) are masked: soft errors there never matter");

    // 4. The use-case numbers.
    let sim = Simulator::new(&program);
    let golden = sim.run_golden();
    let pruning = bec_core::pruning::pruning_row("countYears", &program, &bec, &golden.profile);
    let surf = bec_core::surface::surface_row("countYears", &program, &bec, &golden.profile);
    println!();
    println!("inject-on-read FI runs : {}", pruning.live_values);
    println!(
        "BEC bit-level FI runs  : {} ({:.1}% pruned)",
        pruning.live_bits,
        pruning.pruned_pct()
    );
    println!("program fault surface  : {} live fault sites", surf.live_sites);
    assert_eq!(pruning.live_values, 288);
    assert_eq!(pruning.live_bits, 225);
    assert_eq!(surf.live_sites, 681);
}
