//! Use case 2 end-to-end: vulnerability-aware instruction scheduling.
//! Reschedules a kernel for best and worst reliability and measures the
//! fault-surface difference (Algorithm 4 / Table IV).
//!
//! ```text
//! cargo run --release --example scheduling
//! ```

use bec_core::{surface, BecAnalysis, BecOptions};
use bec_sched::{Criterion, Scheduler};
use bec_sim::Simulator;

fn measure(name: &str, program: &bec_ir::Program) -> u64 {
    let bec = BecAnalysis::analyze(program, &BecOptions::paper());
    let sim = Simulator::new(program);
    let golden = sim.run_golden();
    let row = surface::surface_row(name, program, &bec, &golden.profile);
    println!(
        "{name:<22} fault surface {:>8}   (trace {} cycles, outputs {:?})",
        row.live_sites,
        golden.cycles(),
        golden.outputs()
    );
    row.live_sites
}

fn main() {
    let bench = bec_suite::benchmark("adpcm_dec").expect("known benchmark");
    let original = bench.compile().expect("compiles");
    println!("adpcm_dec under three scheduling policies:\n");

    // One shared analysis scores every candidate schedule.
    let scheduler = Scheduler::new(&original, &BecOptions::paper());
    let base = measure("original", &original);
    let best_p = scheduler.schedule(Criterion::BestReliability).program;
    let best = measure("best reliability", &best_p);
    let worst_p = scheduler.schedule(Criterion::WorstReliability).program;
    let worst = measure("worst reliability", &worst_p);
    assert_eq!(scheduler.analyses_run(), 1, "both schedules, one scoring analysis");

    println!();
    println!(
        "improvement headroom (worst/best): {:.2}%",
        100.0 * worst as f64 / best as f64 - 100.0
    );
    println!("best vs original: {:+.2}%", 100.0 * best as f64 / base as f64 - 100.0);

    // Scheduling must never change what the program computes.
    let sim = Simulator::new(&best_p);
    assert_eq!(sim.run_golden().outputs(), bench.expected.as_slice());
    let sim = Simulator::new(&worst_p);
    assert_eq!(sim.run_golden().outputs(), bench.expected.as_slice());
    assert!(best <= worst, "the best schedule cannot be more vulnerable than the worst");
}
