# The paper's motivating example (Fig. 1): countYears, ported from the
# 4-bit toy machine to RV32 assembly. Counts i in 1..=7 with
# i % 2 == 0 && i % 4 != 0; prints 2.
#
#   bec analyze  examples/countyears.s
#   bec prune    examples/countyears.s
#   bec sim      examples/countyears.s --fault 3:t0:0

    .globl main
main:
    li   s0, 0          # year counter
    li   s1, 7          # loop counter
loop:
    andi t0, s1, 1      # i % 2
    andi t1, s1, 3      # i % 4
    addi s1, s1, -1
    seqz t0, t0         # i % 2 == 0
    snez t1, t1         # i % 4 != 0
    and  t0, t0, t1
    add  s0, s0, t0
    bnez s1, loop
    print s0
    ecall
