//! Use case 1 end-to-end: run an actual fault-injection campaign with and
//! without BEC pruning on a real kernel, and show that the pruned campaign
//! reaches the same conclusions with fewer runs.
//!
//! ```text
//! cargo run --release --example fi_pruning
//! ```

use bec_core::{BecAnalysis, BecOptions};
use bec_sim::campaign::{bit_level_faults, run_campaign, value_level_faults, CampaignKind};
use bec_sim::{FaultClass, Simulator};

fn main() {
    // A scaled-down CRC32 so the campaigns finish in seconds.
    let bench = bec_suite::crc32::scaled(2);
    let program = bench.compile().expect("compiles");
    let bec = BecAnalysis::analyze(&program, &BecOptions::paper());
    let sim = Simulator::new(&program);
    let golden = sim.run_golden();
    println!("crc32 (2 words): {} cycles, golden output {:?}\n", golden.cycles(), golden.outputs());

    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let value = value_level_faults(&program, &bec, &golden);
    let bits = bit_level_faults(&program, &bec, &golden);
    let v = run_campaign(&sim, &golden, &value, CampaignKind::ValueLevel, threads);
    let b = run_campaign(&sim, &golden, &bits, CampaignKind::BitLevel, threads);

    let show = |name: &str, r: &bec_sim::CampaignSummary| {
        let g = |c: FaultClass| r.outcomes.get(&c).copied().unwrap_or(0);
        println!(
            "{name:<12} runs {:>6}  benign {:>6}  sdc {:>5}  crash {:>4}  deviation {:>4}  hang {:>3}  ({:.2}s)",
            r.runs,
            g(FaultClass::Benign),
            g(FaultClass::Sdc),
            g(FaultClass::Crash),
            g(FaultClass::Deviation),
            g(FaultClass::Hang),
            r.wall.as_secs_f64()
        );
    };
    show("inject-on-read", &v);
    show("BEC-pruned", &b);

    let saved = 100.0 * (1.0 - b.runs as f64 / v.runs as f64);
    println!("\nruns saved by bit-level pruning: {saved:.1}%");
    // The pruned campaign must still surface every distinct failure mode.
    let effective_v = v.effective_runs() > 0;
    let effective_b = b.effective_runs() > 0;
    assert_eq!(effective_v, effective_b, "pruning must not hide failure modes");
    assert!(b.runs < v.runs);
}
