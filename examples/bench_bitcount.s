# bitcount benchmark, exported from the bec-suite mini-C sources.
# expected outputs: [190, 190, 190, 190]
    .data
ntbl:
    .word 0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4
seed:
    .word 305419896
    .text

    .globl next_rand
    .sig next_rand args=0 ret=a0
next_rand:
    addi sp, sp, -32
    la t0, seed
    lw t0, 0(t0)
    li t1, 1664525
    mul t0, t0, t1
    li t1, 1013904223
    add t0, t0, t1
    la t6, seed
    sw t0, 0(t6)
    la t0, seed
    lw t0, 0(t0)
    mv a0, t0
next_rand.__exit:
    addi sp, sp, 32
    ret

    .globl count_naive
    .sig count_naive args=1 ret=a0
count_naive:
    addi sp, sp, -48
    sw s0, 28(sp)
    sw s1, 32(sp)
    mv s0, a0
    li t0, 0
    mv s1, t0
count_naive.while1:
    bnez s0, count_naive.body2
    j count_naive.endwhile3
count_naive.body2:
    andi t1, s0, 1
    add t0, s1, t1
    mv s1, t0
    srli t0, s0, 1
    mv s0, t0
    j count_naive.while1
count_naive.endwhile3:
    mv a0, s1
count_naive.__exit:
    lw s0, 28(sp)
    lw s1, 32(sp)
    addi sp, sp, 48
    ret

    .globl count_kernighan
    .sig count_kernighan args=1 ret=a0
count_kernighan:
    addi sp, sp, -48
    sw s0, 28(sp)
    sw s1, 32(sp)
    mv s0, a0
    li t0, 0
    mv s1, t0
count_kernighan.while1:
    bnez s0, count_kernighan.body2
    j count_kernighan.endwhile3
count_kernighan.body2:
    li t2, 1
    sub t1, s0, t2
    and t0, s0, t1
    mv s0, t0
    addi t0, s1, 1
    mv s1, t0
    j count_kernighan.while1
count_kernighan.endwhile3:
    mv a0, s1
count_kernighan.__exit:
    lw s0, 28(sp)
    lw s1, 32(sp)
    addi sp, sp, 48
    ret

    .globl count_nibble
    .sig count_nibble args=1 ret=a0
count_nibble:
    addi sp, sp, -48
    sw s0, 28(sp)
    sw s1, 32(sp)
    mv s0, a0
    li t0, 0
    mv s1, t0
count_nibble.while1:
    bnez s0, count_nibble.body2
    j count_nibble.endwhile3
count_nibble.body2:
    andi t1, s0, 15
    la t2, ntbl
    slli t1, t1, 2
    add t1, t2, t1
    lw t1, 0(t1)
    add t0, s1, t1
    mv s1, t0
    srli t0, s0, 4
    mv s0, t0
    j count_nibble.while1
count_nibble.endwhile3:
    mv a0, s1
count_nibble.__exit:
    lw s0, 28(sp)
    lw s1, 32(sp)
    addi sp, sp, 48
    ret

    .globl count_parallel
    .sig count_parallel args=1 ret=a0
count_parallel:
    addi sp, sp, -48
    sw s0, 28(sp)
    li t1, 1431655765
    and t0, a0, t1
    srli t1, a0, 1
    li t2, 1431655765
    and t1, t1, t2
    add t0, t0, t1
    mv s0, t0
    li t1, 858993459
    and t0, t0, t1
    srli t1, s0, 2
    li t2, 858993459
    and t1, t1, t2
    add t0, t0, t1
    srli t1, t0, 4
    add t0, t0, t1
    li t1, 252645135
    and t0, t0, t1
    srli t1, t0, 8
    add t0, t0, t1
    srli t1, t0, 16
    add t0, t0, t1
    andi t0, t0, 63
    mv a0, t0
count_parallel.__exit:
    lw s0, 28(sp)
    addi sp, sp, 48
    ret

    .globl main
    .sig main args=0 ret=none
main:
    addi sp, sp, -64
    sw ra, 52(sp)
    sw s0, 28(sp)
    sw s1, 32(sp)
    sw s2, 36(sp)
    sw s3, 40(sp)
    sw s4, 44(sp)
    sw s5, 48(sp)
    li t0, 0
    mv s2, t0
    li t0, 0
    mv s3, t0
    li t0, 0
    mv s4, t0
    li t0, 0
    mv s5, t0
    li t0, 0
    mv s1, t0
main.for1:
    sltiu t0, s1, 12
    bnez t0, main.body2
    j main.endfor4
main.body2:
    call next_rand
    mv s0, a0
    sw s2, 0(sp)
    call count_naive
    lw t0, 0(sp)
    add t0, t0, a0
    mv s2, t0
    sw s3, 0(sp)
    mv a0, s0
    call count_kernighan
    lw t0, 0(sp)
    add t0, t0, a0
    mv s3, t0
    sw s4, 0(sp)
    mv a0, s0
    call count_nibble
    lw t0, 0(sp)
    add t0, t0, a0
    mv s4, t0
    sw s5, 0(sp)
    mv a0, s0
    call count_parallel
    lw t0, 0(sp)
    add t0, t0, a0
    mv s5, t0
main.step3:
    addi t0, s1, 1
    mv s1, t0
    j main.for1
main.endfor4:
    print s2
    print s3
    print s4
    print s5
main.__exit:
    lw s0, 28(sp)
    lw s1, 32(sp)
    lw s2, 36(sp)
    lw s3, 40(sp)
    lw s4, 44(sp)
    lw s5, 48(sp)
    lw ra, 52(sp)
    addi sp, sp, 64
    ecall
