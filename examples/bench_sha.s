# sha benchmark, exported from the bec-suite mini-C sources.
# expected outputs: [2845392438, 1191608682, 3124634993, 2018558572, 2630932637]
    .data
w:
    .zero 320
blk:
    .word 1633837952, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 24
    .text

    .globl main
    .sig main args=0 ret=none
main:
    addi sp, sp, -96
    sw s0, 40(sp)
    sw s1, 44(sp)
    sw s2, 48(sp)
    sw s3, 52(sp)
    sw s4, 56(sp)
    sw s5, 60(sp)
    sw s6, 64(sp)
    sw s7, 68(sp)
    sw s8, 72(sp)
    sw s9, 76(sp)
    sw s10, 80(sp)
    sw s11, 84(sp)
    li t0, 1732584193
    mv s10, t0
    li t0, 4023233417
    mv s11, t0
    li t0, 2562383102
    sw t0, 28(sp)
    li t0, 271733878
    sw t0, 32(sp)
    li t0, 3285377520
    sw t0, 36(sp)
    li t0, 0
    mv s0, t0
main.for1:
    sltiu t0, s0, 16
    bnez t0, main.body2
    j main.endfor4
main.body2:
    la t1, blk
    slli t0, s0, 2
    add t0, t1, t0
    lw t0, 0(t0)
    la t2, w
    slli t1, s0, 2
    add t2, t2, t1
    sw t0, 0(t2)
main.step3:
    addi t0, s0, 1
    mv s0, t0
    j main.for1
main.endfor4:
    li t0, 16
    mv s0, t0
main.for5:
    sltiu t0, s0, 80
    bnez t0, main.body6
    j main.endfor8
main.body6:
    li t1, 3
    sub t0, s0, t1
    la t1, w
    slli t0, t0, 2
    add t0, t1, t0
    lw t0, 0(t0)
    li t2, 8
    sub t1, s0, t2
    la t2, w
    slli t1, t1, 2
    add t1, t2, t1
    lw t1, 0(t1)
    xor t0, t0, t1
    li t2, 14
    sub t1, s0, t2
    la t2, w
    slli t1, t1, 2
    add t1, t2, t1
    lw t1, 0(t1)
    xor t0, t0, t1
    li t2, 16
    sub t1, s0, t2
    la t2, w
    slli t1, t1, 2
    add t1, t2, t1
    lw t1, 0(t1)
    xor t0, t0, t1
    mv s7, t0
    slli t0, t0, 1
    srli t1, s7, 31
    or t0, t0, t1
    la t2, w
    slli t1, s0, 2
    add t2, t2, t1
    sw t0, 0(t2)
main.step7:
    addi t0, s0, 1
    mv s0, t0
    j main.for5
main.endfor8:
    mv s6, s10
    mv s1, s11
    lw t0, 28(sp)
    mv s2, t0
    lw t0, 32(sp)
    mv s3, t0
    lw t0, 36(sp)
    mv s8, t0
    li t0, 0
    mv s0, t0
main.for9:
    sltiu t0, s0, 80
    bnez t0, main.body10
    j main.endfor12
main.body10:
    sltiu t0, s0, 20
    bnez t0, main.then13
    j main.else14
main.then13:
    and t0, s1, s2
    xori t1, s1, -1
    and t1, t1, s3
    or t0, t0, t1
    mv s4, t0
    li t0, 1518500249
    mv s5, t0
    j main.join15
main.else14:
    sltiu t0, s0, 40
    bnez t0, main.then16
    j main.else17
main.then16:
    xor t0, s1, s2
    xor t0, t0, s3
    mv s4, t0
    li t0, 1859775393
    mv s5, t0
    j main.join18
main.else17:
    sltiu t0, s0, 60
    bnez t0, main.then19
    j main.else20
main.then19:
    and t0, s1, s2
    and t1, s1, s3
    or t0, t0, t1
    and t1, s2, s3
    or t0, t0, t1
    mv s4, t0
    li t0, 2400959708
    mv s5, t0
    j main.join21
main.else20:
    xor t0, s1, s2
    xor t0, t0, s3
    mv s4, t0
    li t0, 3395469782
    mv s5, t0
main.join21:
main.join18:
main.join15:
    slli t0, s6, 5
    srli t1, s6, 27
    or t0, t0, t1
    add t0, t0, s4
    add t0, t0, s8
    add t0, t0, s5
    la t2, w
    slli t1, s0, 2
    add t1, t2, t1
    lw t1, 0(t1)
    add t0, t0, t1
    mv s9, t0
    mv s8, s3
    mv s3, s2
    slli t0, s1, 30
    srli t1, s1, 2
    or t0, t0, t1
    mv s2, t0
    mv s1, s6
    mv s6, s9
main.step11:
    addi t0, s0, 1
    mv s0, t0
    j main.for9
main.endfor12:
    add t0, s10, s6
    print t0
    add t0, s11, s1
    print t0
    lw t0, 28(sp)
    add t0, t0, s2
    print t0
    lw t0, 32(sp)
    add t0, t0, s3
    print t0
    lw t0, 36(sp)
    add t0, t0, s8
    print t0
main.__exit:
    lw s0, 40(sp)
    lw s1, 44(sp)
    lw s2, 48(sp)
    lw s3, 52(sp)
    lw s4, 56(sp)
    lw s5, 60(sp)
    lw s6, 64(sp)
    lw s7, 68(sp)
    lw s8, 72(sp)
    lw s9, 76(sp)
    lw s10, 80(sp)
    lw s11, 84(sp)
    addi sp, sp, 96
    ecall
