# Data-section demo: copies a table through memory, summing as it goes.
# Exercises .data/.word/.zero, la, word loads/stores and a counted loop.
#
#   bec analyze examples/memcopy.s
#   bec encode  examples/memcopy.s

    .data
src:
    .word 11, 22, 33, 44
dst:
    .zero 16
    .text
    .globl main
main:
    la   t0, src
    la   t1, dst
    li   t2, 4          # element count
    li   s0, 0          # checksum
loop:
    lw   a0, 0(t0)
    sw   a0, 0(t1)
    add  s0, s0, a0
    addi t0, t0, 4
    addi t1, t1, 4
    addi t2, t2, -1
    bnez t2, loop
    print s0            # 110
    ecall
