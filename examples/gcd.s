# Function-call demo: Euclid's gcd with a proper ABI signature.
# Shows .globl/.sig, call/ret, and multi-function analysis.
#
#   bec analyze  examples/gcd.s
#   bec schedule examples/gcd.s --criterion best

    .text
    .globl main
    .globl gcd
    .sig gcd args=2 ret=a0
main:
    li   a0, 252
    li   a1, 105
    call gcd
    print a0            # 21
    ecall

gcd:
    beqz a1, done
    remu t0, a0, a1     # (a0, a1) <- (a1, a0 mod a1)
    mv   a0, a1
    mv   a1, t0
    j    gcd
done:
    ret
